//! The OpenCL-flavoured host runtime.
//!
//! Exposes the portability surface the paper evaluates in Section V:
//! platform enumeration by `CL_DEVICE_TYPE_*`, online program builds
//! through the OpenCL front-end, and software resource validation at
//! `clEnqueueNDRangeKernel` time (the source of the `CL_OUT_OF_RESOURCES`
//! aborts on the Cell/BE in Table VI).

use crate::error::{ClStatus, RtError};
use crate::gpu::{Gpu, LoadedKernel, Session};
use gpucmp_compiler::Api;
use gpucmp_sim::{Arch, DeviceKind, DeviceSpec, LaunchConfig};

/// OpenCL runtime submit overhead per kernel enqueue, ns (larger than
/// CUDA's — the paper's kernel-launch-time observation).
pub const OPENCL_SUBMIT_NS: f64 = 20_000.0;

/// An OpenCL context on one device.
#[derive(Debug)]
pub struct OpenCl {
    session: Session,
}

impl OpenCl {
    /// `clGetDeviceIDs`-style creation: the requested device type must
    /// match the device (the paper's "minor modifications" when porting
    /// SDK benchmarks from `CL_DEVICE_TYPE_GPU` to `_CPU`/`_ACCELERATOR`).
    pub fn create(device: DeviceSpec, requested: DeviceKind) -> Result<Self, RtError> {
        if device.kind != requested {
            return Err(RtError::Cl(ClStatus::DeviceNotFound));
        }
        Ok(OpenCl {
            session: Session::new(device),
        })
    }

    /// Create with `CL_DEVICE_TYPE_ALL` (always succeeds — the paper's
    /// recommended vendor-independent idiom).
    pub fn create_any(device: DeviceSpec) -> Self {
        OpenCl {
            session: Session::new(device),
        }
    }

    /// The SPE local store (256 KiB) must hold the kernel *code*, the
    /// work-group's local memory, and per-work-item spill space — the model
    /// of the budget the IBM OpenCL runtime enforces. Code size is the
    /// dominant term for the big unrolled kernels (FFT, DXTC, the sorting
    /// networks), which is why exactly those abort in the paper's Table VI.
    fn spe_local_store_need(kernel: &LoadedKernel, wg_size: u64) -> u64 {
        const SPE_INST_BYTES: u64 = 8; // dual-issue bundles
        kernel.resolved.kernel.len_real() as u64 * SPE_INST_BYTES
            + kernel.shared_bytes() as u64
            + wg_size * kernel.local_bytes() as u64
    }
}

/// Usable SPE local store after the OpenCL runtime, stacks and DMA buffers
/// (of the physical 256 KiB).
pub const SPE_USABLE_LOCAL_STORE: u64 = 10 * 1024;

impl Gpu for OpenCl {
    fn api(&self) -> Api {
        Api::OpenCl
    }

    fn session(&self) -> &Session {
        &self.session
    }

    fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    fn submit_overhead_ns(&self) -> f64 {
        OPENCL_SUBMIT_NS
    }

    fn validate_launch(&self, kernel: &LoadedKernel, cfg: &LaunchConfig) -> Result<(), RtError> {
        let d = self.device();
        let wg = cfg.block.count();
        if wg > d.max_workgroup_size as u64 {
            return Err(RtError::Cl(ClStatus::InvalidWorkGroupSize));
        }
        if kernel.shared_bytes() > d.shared_mem_per_cu {
            return Err(RtError::Cl(ClStatus::OutOfResources));
        }
        if d.arch == Arch::CellSpe
            && Self::spe_local_store_need(kernel, wg) > SPE_USABLE_LOCAL_STORE
        {
            return Err(RtError::Cl(ClStatus::OutOfResources));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_type_filtering() {
        assert!(OpenCl::create(DeviceSpec::gtx280(), DeviceKind::Gpu).is_ok());
        assert!(matches!(
            OpenCl::create(DeviceSpec::intel920(), DeviceKind::Gpu),
            Err(RtError::Cl(ClStatus::DeviceNotFound))
        ));
        assert!(OpenCl::create(DeviceSpec::intel920(), DeviceKind::Cpu).is_ok());
        assert!(OpenCl::create(DeviceSpec::cellbe(), DeviceKind::Accelerator).is_ok());
        // TYPE_ALL works everywhere
        let _ = OpenCl::create_any(DeviceSpec::hd5870());
    }
}
