//! The CUDA-flavoured host runtime.
//!
//! Thin vendor-locked API: it only drives NVIDIA devices (GT200 / Fermi in
//! the catalogue) and has the lower kernel-launch overhead the paper
//! measures in Section IV-B-4.

use crate::error::RtError;
use crate::gpu::{Gpu, LoadedKernel, Session};
use gpucmp_compiler::Api;
use gpucmp_sim::{Arch, DeviceSpec, LaunchConfig};

/// CUDA driver submit overhead per kernel launch, ns.
pub const CUDA_SUBMIT_NS: f64 = 7_000.0;

/// A CUDA context on one NVIDIA device.
#[derive(Debug)]
pub struct Cuda {
    session: Session,
}

impl Cuda {
    /// Create a CUDA context. Fails on non-NVIDIA devices, as in reality.
    pub fn new(device: DeviceSpec) -> Result<Self, RtError> {
        Cuda::with_arena(device, crate::gpu::DEFAULT_ARENA_BYTES)
    }

    /// [`Cuda::new`] with an explicit device-memory-arena ceiling (see
    /// [`Session::with_arena`]) — used by pooled servers to size each
    /// preallocated slot.
    pub fn with_arena(device: DeviceSpec, arena_bytes: u64) -> Result<Self, RtError> {
        match device.arch {
            Arch::Gt200 | Arch::Fermi => Ok(Cuda {
                session: Session::with_arena(device, arena_bytes),
            }),
            _ => Err(RtError::WrongVendor(device.name)),
        }
    }
}

impl Gpu for Cuda {
    fn api(&self) -> Api {
        Api::Cuda
    }

    fn session(&self) -> &Session {
        &self.session
    }

    fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    fn submit_overhead_ns(&self) -> f64 {
        CUDA_SUBMIT_NS
    }

    fn validate_launch(&self, kernel: &LoadedKernel, cfg: &LaunchConfig) -> Result<(), RtError> {
        // CUDA relies on the hardware checks the simulator performs; no
        // extra software validation layer.
        let _ = (kernel, cfg);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuda_rejects_non_nvidia() {
        assert!(Cuda::new(DeviceSpec::gtx280()).is_ok());
        assert!(Cuda::new(DeviceSpec::gtx480()).is_ok());
        assert!(matches!(
            Cuda::new(DeviceSpec::hd5870()),
            Err(RtError::WrongVendor(_))
        ));
        assert!(Cuda::new(DeviceSpec::intel920()).is_err());
        assert!(Cuda::new(DeviceSpec::cellbe()).is_err());
    }
}
