//! # gpucmp-runtime — the two host APIs over the simulator
//!
//! Implements the run-time layer of the paper's comparison (steps 7-8 of
//! the development flow): a CUDA-flavoured driver API ([`cuda::Cuda`]) and
//! an OpenCL-flavoured one ([`opencl::OpenCl`]), both over the same
//! simulated device, sharing the [`gpu::Gpu`] trait so a benchmark's host
//! logic is written exactly once.
//!
//! The modelled differences are the ones the paper measures:
//!
//! - **Kernel launch overhead** — `clEnqueueNDRangeKernel` costs more than
//!   a CUDA launch ([`opencl::OPENCL_SUBMIT_NS`] vs [`cuda::CUDA_SUBMIT_NS`]);
//!   this is what slows OpenCL BFS (Section IV-B-4).
//! - **Vendor lock** — [`cuda::Cuda::new`] refuses non-NVIDIA devices;
//!   OpenCL runs everywhere but requires the right `CL_DEVICE_TYPE` (the
//!   Section V porting changes).
//! - **Resource validation** — the OpenCL runtime checks work-group sizes
//!   and the Cell/BE's SPE local-store budget, returning
//!   `CL_OUT_OF_RESOURCES` exactly where the paper reports "ABT".
//!
//! Both runtimes keep a deterministic virtual clock: transfers, launch
//! overheads and modelled kernel durations advance it; benchmarks read it
//! like a wall-clock timer.

pub mod buffer;
pub mod cuda;
pub mod error;
pub mod gpu;
pub mod inject;
pub mod opencl;
pub mod stream;

pub use buffer::{Buffer, DeviceScalar};
pub use cuda::{Cuda, CUDA_SUBMIT_NS};
pub use error::{ClStatus, RtError};
pub use gpu::{
    Gpu, GpuExt, KernelHandle, LaunchOutcome, LoadedKernel, Session, SessionEvent, TransferDir,
    MEMCPY_LATENCY_NS, PCIE_GBS,
};
pub use inject::FaultPlan;
pub use opencl::{OpenCl, OPENCL_SUBMIT_NS, SPE_USABLE_LOCAL_STORE};
pub use stream::{Event, ResetReport, Stream};

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_compiler::{global_id_x, DslKernel};
    use gpucmp_ptx::Ty;
    use gpucmp_sim::{DeviceSpec, LaunchConfig};

    fn fill_kernel() -> gpucmp_compiler::KernelDef {
        let mut k = DslKernel::new("fill");
        let out = k.param_ptr("out");
        let n = k.param("n", Ty::S32);
        let gid = k.let_(Ty::S32, global_id_x());
        k.if_(gpucmp_compiler::Expr::from(gid).lt(n), |k| {
            k.st_global(out.clone(), gid, Ty::F32, 2.5f32);
        });
        k.finish()
    }

    #[test]
    fn same_kernel_runs_on_both_apis() {
        let def = fill_kernel();
        let n = 1000usize;

        let mut cuda = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let buf = cuda.malloc((n * 4) as u64).unwrap();
        let h = cuda.build(&def).unwrap();
        let cfg = LaunchConfig::new(8u32, 128u32)
            .arg_ptr(buf)
            .arg_i32(n as i32);
        cuda.launch(h, &cfg).unwrap();
        let out_c = cuda.d2h_t::<f32>(buf, n).unwrap();

        let mut ocl = OpenCl::create_any(DeviceSpec::gtx480());
        let buf2 = ocl.malloc((n * 4) as u64).unwrap();
        let h2 = ocl.build(&def).unwrap();
        let cfg2 = LaunchConfig::new(8u32, 128u32)
            .arg_ptr(buf2)
            .arg_i32(n as i32);
        ocl.launch(h2, &cfg2).unwrap();
        let out_o = ocl.d2h_t::<f32>(buf2, n).unwrap();

        assert_eq!(out_c, out_o);
        assert!(out_c.iter().all(|&v| v == 2.5));
    }

    #[test]
    fn opencl_launch_overhead_exceeds_cuda() {
        let def = fill_kernel();
        let time_of = |mut g: Box<dyn Gpu>| {
            let buf = g.malloc(4096).unwrap();
            let h = g.build(&def).unwrap();
            let cfg = LaunchConfig::new(1u32, 128u32).arg_ptr(buf).arg_i32(128);
            let t0 = g.now_ns();
            for _ in 0..10 {
                g.launch(h, &cfg).unwrap();
            }
            g.now_ns() - t0
        };
        let c = time_of(Box::new(Cuda::new(DeviceSpec::gtx280()).unwrap()));
        let o = time_of(Box::new(OpenCl::create_any(DeviceSpec::gtx280())));
        assert!(
            o > c,
            "OpenCL launches ({o} ns) must cost more than CUDA ({c} ns)"
        );
        // the gap is roughly 10 x (submit difference)
        let gap = o - c;
        let expected = 10.0 * (OPENCL_SUBMIT_NS - CUDA_SUBMIT_NS);
        assert!(
            (gap - expected).abs() < expected * 0.5,
            "gap {gap} vs {expected}"
        );
    }

    #[test]
    fn transfers_advance_clock() {
        let mut cuda = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let buf = cuda.malloc(1 << 20).unwrap();
        let t0 = cuda.now_ns();
        let data = vec![1.0f32; 1 << 18];
        cuda.h2d_t(buf, &data).unwrap();
        let dt = cuda.now_ns() - t0;
        // 1 MiB at 5.7 GB/s ≈ 184 µs + 10 µs latency
        assert!(dt > 150_000.0 && dt < 300_000.0, "dt={dt}");
        let back = cuda.d2h_t::<f32>(buf, 1 << 18).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn oversized_workgroup_is_cl_error() {
        let def = fill_kernel();
        let mut ocl = OpenCl::create_any(DeviceSpec::hd5870()); // max wg 256
        let buf = ocl.malloc(4096).unwrap();
        let h = ocl.build(&def).unwrap();
        let cfg = LaunchConfig::new(1u32, 512u32).arg_ptr(buf).arg_i32(512);
        let e = ocl.launch(h, &cfg).unwrap_err();
        assert_eq!(e, RtError::Cl(ClStatus::InvalidWorkGroupSize));
    }

    #[test]
    fn launch_counts_and_kernel_time_accumulate() {
        let def = fill_kernel();
        let mut cuda = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let buf = cuda.malloc(4096).unwrap();
        let h = cuda.build(&def).unwrap();
        let cfg = LaunchConfig::new(1u32, 128u32).arg_ptr(buf).arg_i32(128);
        for _ in 0..3 {
            cuda.launch(h, &cfg).unwrap();
        }
        assert_eq!(cuda.session().launches(), 3);
        assert!(cuda.session().kernel_ns_total() > 0.0);
    }
}
