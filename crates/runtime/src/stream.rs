//! Streams and events: the asynchronous half of the host API.
//!
//! A [`Stream`] is the CUDA-stream / OpenCL-command-queue analogue: work
//! enqueued on one stream executes in enqueue order, work on different
//! streams may overlap wherever it occupies different device engines
//! (H2D DMA, D2H DMA, compute — see
//! [`gpucmp_sim::timing::TimelineResource`]). Every enqueue returns an
//! [`Event`] that identifies the op's completion on the virtual timeline;
//! events order work across streams ([`crate::Gpu::stream_wait_event`])
//! and gate host-side synchronisation
//! ([`crate::Gpu::event_synchronize`]).
//!
//! ## Execution model
//!
//! Side effects are **eager**, timing is **lazy**. An enqueued transfer
//! copies its bytes and an enqueued launch runs the simulator immediately
//! (so data flow follows enqueue order, which within a stream *is*
//! execution order), but no virtual time passes at enqueue. The op is
//! placed on the device timeline at the next synchronisation point, where
//! the deterministic scheduler in `gpucmp_sim::timing` computes overlap
//! per engine. The host clock never goes backwards: synchronisation only
//! ever advances it to the completion time it waited for.
//!
//! The classic synchronous API (`h2d`, `d2h`, `launch`) is sugar over
//! [`Stream::DEFAULT`]: enqueue one op, then synchronise on its event —
//! which reproduces the fully serial timeline exactly.

use std::fmt;

use crate::gpu::TransferDir;
use gpucmp_sim::launch::Dim3;
use gpucmp_sim::timing::{TimelineOp, Timing};
use gpucmp_sim::{DeviceFault, ExecStats};

/// Handle to a stream of a session.
///
/// Stream `0` is the *default stream* every synchronous call uses;
/// additional streams come from [`crate::Gpu::create_stream`]. Handles are
/// invalidated by [`crate::Session::reset`] (like every other handle).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Stream(pub(crate) u32);

impl Stream {
    /// The implicit default stream backing the synchronous API.
    pub const DEFAULT: Stream = Stream(0);

    /// Numeric stream id (0 = default stream).
    pub fn id(self) -> u32 {
        self.0
    }

    /// Whether this is the default stream.
    pub fn is_default(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Stream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_default() {
            f.write_str("default stream")
        } else {
            write!(f, "stream {}", self.0)
        }
    }
}

/// Completion marker of one enqueued op, identified by
/// `(stream, per-stream sequence number)` — the same key the timeline
/// scheduler uses, so an event names a unique point on the virtual
/// timeline regardless of host-side enqueue interleaving.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Event {
    stream: u32,
    seq: u64,
}

impl Event {
    pub(crate) fn new(stream: u32, seq: u64) -> Self {
        Event { stream, seq }
    }

    /// Id of the stream the recorded op belongs to.
    pub fn stream_id(self) -> u32 {
        self.stream
    }

    /// Per-stream sequence number of the recorded op.
    pub fn seq(self) -> u64 {
        self.seq
    }

    pub(crate) fn key(self) -> (u32, u64) {
        (self.stream, self.seq)
    }
}

/// What [`crate::Session::reset`] found and discarded: enqueued stream
/// work that had not yet been committed to the timeline is *cancelled*,
/// not silently dropped, and reported here.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResetReport {
    /// Enqueued-but-uncommitted ops cancelled by the reset.
    pub cancelled_ops: usize,
    /// The same ops grouped `(stream id, op count)`, ascending by stream.
    pub cancelled_by_stream: Vec<(u32, usize)>,
    /// Completed d2h payloads that were never taken by the host.
    pub dropped_readbacks: usize,
    /// Pre-decoded kernels evicted from the session code cache.
    pub evicted_kernels: usize,
    /// The sticky fault that poisoned the context, if the reset cleared one.
    pub fault: Option<String>,
}

impl ResetReport {
    /// Whether the reset discarded any in-flight work or data.
    pub fn lost_work(&self) -> bool {
        self.cancelled_ops > 0 || self.dropped_readbacks > 0
    }
}

impl fmt::Display for ResetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reset: {} pending op(s) cancelled, {} readback(s) dropped",
            self.cancelled_ops, self.dropped_readbacks
        )?;
        if let Some(fault) = &self.fault {
            write!(f, " (context was lost to: {fault})")?;
        }
        Ok(())
    }
}

/// Host-side state of one stream.
#[derive(Clone, Debug, Default)]
pub(crate) struct StreamState {
    /// Next per-stream sequence number to hand out.
    pub next_seq: u64,
    /// Events recorded by `stream_wait_event` that the *next* enqueued op
    /// must wait on (subsequent ops inherit the ordering transitively
    /// through in-stream program order).
    pub pending_deps: Vec<(u32, u64)>,
    /// Description of the device fault raised by a launch on this stream,
    /// if any (the per-stream face of the sticky context poison).
    pub error: Option<String>,
}

/// Deferred bookkeeping of one enqueued op: everything needed to emit its
/// trace events once the scheduler has placed it on the timeline.
#[derive(Clone, Debug)]
pub(crate) enum PendingPayload {
    /// A PCIe transfer (bytes already moved eagerly).
    Transfer { dir: TransferDir, bytes: u64 },
    /// A kernel launch (simulated eagerly; timing committed lazily).
    Launch {
        kernel: String,
        overhead_ns: f64,
        kernel_ns: f64,
        grid: Dim3,
        block: Dim3,
        stats: Box<ExecStats>,
        timing: Timing,
        /// Memcheck-suppressed faults to pin at kernel start.
        faults: Vec<DeviceFault>,
        /// CU count for fault siting.
        cus: u32,
    },
}

/// One enqueued-but-uncommitted op.
#[derive(Clone, Debug)]
pub(crate) struct PendingOp {
    pub op: TimelineOp,
    pub payload: PendingPayload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_display_and_default() {
        assert!(Stream::DEFAULT.is_default());
        assert_eq!(Stream::DEFAULT.to_string(), "default stream");
        assert_eq!(Stream(3).to_string(), "stream 3");
        assert_eq!(Stream(3).id(), 3);
    }

    #[test]
    fn event_identifies_its_op() {
        let e = Event::new(2, 7);
        assert_eq!(e.stream_id(), 2);
        assert_eq!(e.seq(), 7);
        assert_eq!(e.key(), (2, 7));
    }

    #[test]
    fn reset_report_formats_losses() {
        let r = ResetReport {
            cancelled_ops: 3,
            cancelled_by_stream: vec![(0, 1), (2, 2)],
            dropped_readbacks: 1,
            evicted_kernels: 2,
            fault: Some("kernel `k`: out-of-bounds".into()),
        };
        assert!(r.lost_work());
        let msg = r.to_string();
        assert!(msg.contains("3 pending op(s)"));
        assert!(msg.contains("out-of-bounds"));
        assert!(!ResetReport::default().lost_work());
    }
}
