//! Typed device buffers and the sealed scalar-transfer trait.
//!
//! [`DeviceScalar`] describes the host types that can cross the PCIe bus
//! as little-endian device scalars; it replaces the per-type
//! `h2d_f32`/`d2h_u32`-style method family with one generic pair
//! ([`crate::GpuExt::h2d_t`] / [`crate::GpuExt::d2h_t`]). [`Buffer`]
//! carries the element type and count alongside the raw [`DevPtr`], so
//! call sites stop hand-multiplying byte sizes.

use gpucmp_sim::DevPtr;
use std::marker::PhantomData;

mod sealed {
    /// Seals [`super::DeviceScalar`]: the device ABI is fixed, downstream
    /// crates cannot add representations.
    pub trait Sealed {}
}

/// A host scalar with a defined little-endian device representation.
///
/// Sealed: implemented exactly for the scalar types the simulated devices
/// understand (`u8 i8 u16 i16 u32 i32 u64 i64 f32 f64`).
pub trait DeviceScalar: sealed::Sealed + Copy + 'static {
    /// Size of the device representation in bytes.
    const BYTES: usize;

    /// Append the little-endian device representation to `out`.
    fn write_le(self, out: &mut Vec<u8>);

    /// Decode from exactly [`Self::BYTES`] little-endian bytes.
    fn from_le(bytes: &[u8]) -> Self;
}

macro_rules! device_scalar {
    ($($t:ty),* $(,)?) => {$(
        impl sealed::Sealed for $t {}
        impl DeviceScalar for $t {
            const BYTES: usize = std::mem::size_of::<$t>();

            #[inline]
            fn write_le(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn from_le(bytes: &[u8]) -> Self {
                Self::from_le_bytes(bytes.try_into().expect("exact chunk"))
            }
        }
    )*};
}

device_scalar!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

/// A typed handle to a device allocation: base pointer + element count.
///
/// `Buffer<T>` is a plain value (`Copy`); it does not own or free device
/// memory — the session's bump arena lives for the session. What it adds
/// over a raw [`DevPtr`] is the element type and length, so transfers and
/// kernel arguments can be sized by the type system instead of by
/// hand-multiplied byte counts.
pub struct Buffer<T> {
    ptr: DevPtr,
    len: usize,
    _elem: PhantomData<fn() -> T>,
}

impl<T> Clone for Buffer<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Buffer<T> {}

impl<T> std::fmt::Debug for Buffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Buffer")
            .field("ptr", &self.ptr)
            .field("len", &self.len)
            .field("elem", &std::any::type_name::<T>())
            .finish()
    }
}

impl<T: DeviceScalar> Buffer<T> {
    /// Wrap an existing allocation of `len` elements at `ptr`.
    pub fn from_raw(ptr: DevPtr, len: usize) -> Self {
        Buffer {
            ptr,
            len,
            _elem: PhantomData,
        }
    }

    /// Base device pointer.
    pub fn ptr(&self) -> DevPtr {
        self.ptr
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total size in bytes.
    pub fn bytes(&self) -> u64 {
        (self.len * T::BYTES) as u64
    }

    /// Device pointer to element `index` (bounds-checked).
    pub fn at(&self, index: usize) -> DevPtr {
        assert!(
            index <= self.len,
            "index {index} out of bounds for Buffer of {} elements",
            self.len
        );
        self.ptr.offset((index * T::BYTES) as u64)
    }
}

impl<T: DeviceScalar> From<Buffer<T>> for DevPtr {
    fn from(b: Buffer<T>) -> DevPtr {
        b.ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_representations() {
        let mut out = Vec::new();
        1.5f32.write_le(&mut out);
        (-2i32).write_le(&mut out);
        0xdead_beefu32.write_le(&mut out);
        assert_eq!(out.len(), 12);
        assert_eq!(<f32 as DeviceScalar>::from_le(&out[0..4]), 1.5);
        assert_eq!(<i32 as DeviceScalar>::from_le(&out[4..8]), -2);
        assert_eq!(<u32 as DeviceScalar>::from_le(&out[8..12]), 0xdead_beef);
    }

    #[test]
    fn buffer_geometry() {
        let b: Buffer<f32> = Buffer::from_raw(DevPtr(256), 10);
        assert_eq!(b.bytes(), 40);
        assert_eq!(b.at(3), DevPtr(256 + 12));
        assert!(!b.is_empty());
        let p: DevPtr = b.into();
        assert_eq!(p, DevPtr(256));
    }
}
