//! Deterministic, seeded fault injection for robustness campaigns.
//!
//! A [`FaultPlan`] attached to a [`crate::Session`] (via
//! [`crate::gpu::Gpu::set_fault_plan`]) makes specific host-API calls fail
//! on purpose: the Nth `malloc`, the Nth `h2d`, the Nth launch — or it
//! silently corrupts a transfer, or starves a launch's instruction budget
//! so the simulator's watchdog fires a genuine sticky device fault.
//!
//! Everything is a pure function of the seed: two sessions given the same
//! plan fail at exactly the same call, so fault-injection campaigns are as
//! reproducible as fault-free ones. There is no wall clock or host RNG
//! anywhere — the splitmix64 stream below is the only randomness, and it
//! is seeded explicitly.

/// What the plan wants done to the current `h2d` call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferAction {
    /// Let the transfer through untouched.
    Pass,
    /// Fail the call with [`crate::RtError::Injected`] (the `nth` payload).
    Fail(u64),
    /// Let the transfer through but flip one byte of the payload
    /// (silent corruption; downstream verification should catch it).
    Corrupt,
}

/// What the plan wants done to the current launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaunchAction {
    /// Launch normally.
    Pass,
    /// Fail the call with [`crate::RtError::Injected`] — an API-level
    /// rejection, *not* sticky.
    Fail(u64),
    /// Launch with the instruction budget clamped to this value, so the
    /// watchdog raises a genuine (sticky) device fault mid-kernel.
    Starve(u64),
}

/// A deterministic schedule of injected failures.
///
/// At most one trigger of each class; counters advance as the session
/// makes calls, so "the 2nd malloc" means the 2nd malloc *after the plan
/// was attached*.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Fail the Nth (0-based) device allocation.
    pub fail_malloc: Option<u64>,
    /// Fail the Nth host-to-device transfer.
    pub fail_h2d: Option<u64>,
    /// Flip one byte of the Nth host-to-device transfer.
    pub corrupt_h2d: Option<u64>,
    /// Fail the Nth kernel launch at the API level.
    pub fail_launch: Option<u64>,
    /// Clamp the Nth launch's instruction budget to `.1`, forcing a
    /// watchdog device fault.
    pub starve_launch: Option<(u64, u64)>,
    mallocs: u64,
    h2ds: u64,
    launches: u64,
}

/// Instruction budget used by [`FaultPlan::starve_launch`] triggers built
/// from a seed: small enough that every real kernel trips the watchdog.
pub const STARVED_BUDGET: u64 = 64;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(seed: u64, s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64 ^ seed;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether this plan has no triggers at all.
    pub fn is_none(&self) -> bool {
        self.fail_malloc.is_none()
            && self.fail_h2d.is_none()
            && self.corrupt_h2d.is_none()
            && self.fail_launch.is_none()
            && self.starve_launch.is_none()
    }

    /// Fail the Nth (0-based) device allocation.
    pub fn with_fail_malloc(mut self, nth: u64) -> Self {
        self.fail_malloc = Some(nth);
        self
    }

    /// Fail the Nth host-to-device transfer.
    pub fn with_fail_h2d(mut self, nth: u64) -> Self {
        self.fail_h2d = Some(nth);
        self
    }

    /// Flip one byte of the Nth host-to-device transfer.
    pub fn with_corrupt_h2d(mut self, nth: u64) -> Self {
        self.corrupt_h2d = Some(nth);
        self
    }

    /// Fail the Nth kernel launch at the API level.
    pub fn with_fail_launch(mut self, nth: u64) -> Self {
        self.fail_launch = Some(nth);
        self
    }

    /// Clamp the Nth launch's instruction budget to `budget`.
    pub fn with_starve_launch(mut self, nth: u64, budget: u64) -> Self {
        self.starve_launch = Some((nth, budget));
        self
    }

    /// One injection chosen deterministically from `seed`: which call
    /// class fails and at which early index is a pure function of the
    /// seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut s = seed;
        let kind = splitmix64(&mut s) % 5;
        let nth = splitmix64(&mut s) % 3;
        let mut plan = FaultPlan::none();
        match kind {
            0 => plan.fail_malloc = Some(nth),
            1 => plan.fail_h2d = Some(nth),
            2 => plan.corrupt_h2d = Some(nth),
            3 => plan.fail_launch = Some(nth),
            _ => plan.starve_launch = Some((nth, STARVED_BUDGET)),
        }
        plan
    }

    /// The plan for one campaign case: roughly a third of cases inject a
    /// failure on their first attempt; retries (`attempt > 0`) are clean,
    /// modelling transient faults that a bounded-retry policy recovers
    /// from. Fully determined by `(seed, case, attempt)`.
    pub fn for_case(seed: u64, case: &str, attempt: u32) -> Self {
        if attempt > 0 {
            return FaultPlan::none();
        }
        let mut s = fnv1a(seed, case);
        if splitmix64(&mut s) % 3 != 0 {
            return FaultPlan::none();
        }
        FaultPlan::from_seed(s)
    }

    /// Advance the malloc counter; `Some(nth)` means this call must fail.
    pub(crate) fn on_malloc(&mut self) -> Option<u64> {
        let n = self.mallocs;
        self.mallocs += 1;
        (self.fail_malloc == Some(n)).then_some(n)
    }

    /// Advance the h2d counter and decide this transfer's fate.
    pub(crate) fn on_h2d(&mut self) -> TransferAction {
        let n = self.h2ds;
        self.h2ds += 1;
        if self.fail_h2d == Some(n) {
            TransferAction::Fail(n)
        } else if self.corrupt_h2d == Some(n) {
            TransferAction::Corrupt
        } else {
            TransferAction::Pass
        }
    }

    /// Advance the launch counter and decide this launch's fate.
    pub(crate) fn on_launch(&mut self) -> LaunchAction {
        let n = self.launches;
        self.launches += 1;
        if self.fail_launch == Some(n) {
            LaunchAction::Fail(n)
        } else if let Some((nth, budget)) = self.starve_launch {
            if nth == n {
                return LaunchAction::Starve(budget);
            }
            LaunchAction::Pass
        } else {
            LaunchAction::Pass
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        for seed in 0..64u64 {
            assert_eq!(FaultPlan::from_seed(seed), FaultPlan::from_seed(seed));
            assert!(!FaultPlan::from_seed(seed).is_none(), "seed {seed}");
        }
        // Different seeds do produce different plans.
        let distinct: std::collections::HashSet<_> = (0..64u64)
            .map(|s| format!("{:?}", FaultPlan::from_seed(s)))
            .collect();
        assert!(distinct.len() > 4);
    }

    #[test]
    fn case_plans_inject_a_minority_and_retries_are_clean() {
        let cases: Vec<String> = (0..60).map(|i| format!("bench-{i}")).collect();
        let injected = cases
            .iter()
            .filter(|c| !FaultPlan::for_case(42, c, 0).is_none())
            .count();
        assert!(
            injected > 5 && injected < 40,
            "about a third should inject, got {injected}/60"
        );
        for c in &cases {
            assert!(FaultPlan::for_case(42, c, 1).is_none());
            assert_eq!(FaultPlan::for_case(42, c, 0), FaultPlan::for_case(42, c, 0));
        }
    }

    #[test]
    fn counters_trigger_exactly_once() {
        let mut p = FaultPlan {
            fail_malloc: Some(1),
            ..FaultPlan::none()
        };
        assert_eq!(p.on_malloc(), None);
        assert_eq!(p.on_malloc(), Some(1));
        assert_eq!(p.on_malloc(), None);

        let mut p = FaultPlan {
            corrupt_h2d: Some(0),
            ..FaultPlan::none()
        };
        assert_eq!(p.on_h2d(), TransferAction::Corrupt);
        assert_eq!(p.on_h2d(), TransferAction::Pass);

        let mut p = FaultPlan {
            starve_launch: Some((1, 99)),
            ..FaultPlan::none()
        };
        assert_eq!(p.on_launch(), LaunchAction::Pass);
        assert_eq!(p.on_launch(), LaunchAction::Starve(99));
        assert_eq!(p.on_launch(), LaunchAction::Pass);
    }
}
