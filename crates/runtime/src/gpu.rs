//! The shared device session and the `Gpu` host-API trait.
//!
//! The trait splits in two so it stays object-safe (benchmarks run against
//! `&mut dyn Gpu`): [`Gpu`] holds the dispatchable core (raw transfers,
//! build, [`Gpu::launch_config`]), and the blanket extension [`GpuExt`]
//! layers the generic typed API on top — [`GpuExt::h2d_t`] /
//! [`GpuExt::d2h_t`] over [`DeviceScalar`], typed [`GpuExt::alloc`]
//! returning [`Buffer`], and [`GpuExt::launch`] accepting any
//! `impl Into<LaunchConfig>` (a config, a reference, or a
//! [`gpucmp_sim::LaunchConfigBuilder`]).

use crate::buffer::{Buffer, DeviceScalar};
use crate::error::RtError;
use gpucmp_compiler::{compile_with_style, Api, KernelDef};
use gpucmp_ptx::ResolvedKernel;
use gpucmp_sim::launch::Dim3;
use gpucmp_sim::timing::Timing;
use gpucmp_sim::{
    launch_with as sim_launch_with, DevPtr, DeviceSpec, ExecOptions, ExecProfile, ExecStats,
    GlobalMemory, LaunchConfig, LaunchReport,
};
use std::sync::Arc;

/// PCIe effective host↔device bandwidth in GB/s (PCIe 2.0 x16 era).
pub const PCIE_GBS: f64 = 5.7;
/// Fixed per-transfer latency in ns.
pub const MEMCPY_LATENCY_NS: f64 = 10_000.0;
/// Default simulated device-memory arena (kept well under the cards' real
/// capacity so many sessions can coexist in host RAM).
pub const DEFAULT_ARENA_BYTES: u64 = 192 << 20;

/// Handle to a kernel loaded into a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelHandle(pub usize);

/// A kernel loaded into a session, ready to launch.
#[derive(Clone, Debug)]
pub struct LoadedKernel {
    /// Kernel name.
    pub name: String,
    /// Resolved executable form (shared so launches don't copy the body).
    pub resolved: Arc<ResolvedKernel>,
    /// Packed constant bank.
    pub const_bank: Arc<Vec<u8>>,
    /// Static PTX statistics (pre-backend), for Table V style analyses.
    pub ptx_stats: gpucmp_ptx::InstStats,
    /// Registers the backend had to spill against the device cap.
    pub spilled: u32,
}

impl LoadedKernel {
    /// Physical registers per thread.
    pub fn phys_regs(&self) -> u32 {
        self.resolved.kernel.phys_regs
    }

    /// Static shared memory per block in bytes.
    pub fn shared_bytes(&self) -> u32 {
        self.resolved.kernel.shared_bytes
    }

    /// Per-thread local (spill) bytes.
    pub fn local_bytes(&self) -> u32 {
        self.resolved.kernel.local_bytes
    }
}

/// Transfer direction of a recorded PCIe copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferDir {
    /// Host to device.
    H2D,
    /// Device to host.
    D2H,
}

/// One event of a traced session, on the virtual timeline.
///
/// Recorded only while [`Session::set_tracing`] is on; the stream is what
/// `gpucmp-trace` serialises to chrome-trace JSON.
// Launch is by far the most common variant in real sessions; boxing its
// counters would put an allocation on every launch to save bytes on the
// rare Transfer records.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum SessionEvent {
    /// A kernel launch (API overhead followed by the kernel itself).
    Launch {
        /// Kernel name.
        kernel: String,
        /// Virtual time of API submission, ns.
        start_ns: f64,
        /// API + hardware launch overhead before the kernel starts, ns.
        overhead_ns: f64,
        /// Modelled kernel duration, ns.
        kernel_ns: f64,
        /// Grid dimensions in blocks.
        grid: Dim3,
        /// Block dimensions in threads.
        block: Dim3,
        /// Exact execution counters.
        stats: ExecStats,
        /// Modelled timing breakdown.
        timing: Timing,
    },
    /// A PCIe transfer.
    Transfer {
        /// Direction.
        dir: TransferDir,
        /// Virtual start time, ns.
        start_ns: f64,
        /// Duration, ns.
        dur_ns: f64,
        /// Bytes moved.
        bytes: u64,
    },
}

/// One device context: memory, loaded kernels, and the virtual clock.
#[derive(Debug)]
pub struct Session {
    /// The simulated device.
    pub device: DeviceSpec,
    /// Device global memory.
    pub gmem: GlobalMemory,
    kernels: Vec<LoadedKernel>,
    now_ns: f64,
    launches: u64,
    kernel_ns_total: f64,
    exec: ExecOptions,
    profile_total: ExecProfile,
    trace: Option<Vec<SessionEvent>>,
}

impl Session {
    /// Create a session on `device` with the default memory arena.
    pub fn new(device: DeviceSpec) -> Self {
        let cap = (device.mem_capacity_mib as u64 * 1024 * 1024).min(DEFAULT_ARENA_BYTES);
        Session {
            device,
            gmem: GlobalMemory::new(cap),
            kernels: Vec::new(),
            now_ns: 0.0,
            launches: 0,
            kernel_ns_total: 0.0,
            exec: ExecOptions::default(),
            profile_total: ExecProfile::default(),
            trace: None,
        }
    }

    /// Turn session tracing on or off. While on, every launch and PCIe
    /// transfer is recorded as a [`SessionEvent`] for chrome-trace export.
    /// Turning tracing off discards any recorded events.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = if on { Some(Vec::new()) } else { None };
    }

    /// Whether session tracing is currently on.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Events recorded so far (empty unless tracing is on).
    pub fn trace_events(&self) -> &[SessionEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Record an event if tracing is on.
    pub(crate) fn record(&mut self, e: SessionEvent) {
        if let Some(t) = &mut self.trace {
            t.push(e);
        }
    }

    /// How launches are simulated (host thread count). Purely a host-side
    /// knob: reports are bit-identical for every setting.
    pub fn exec_options(&self) -> ExecOptions {
        self.exec
    }

    /// Set the simulation options for subsequent launches.
    pub fn set_exec_options(&mut self, opts: ExecOptions) {
        self.exec = opts;
    }

    /// Current virtual time in ns.
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// Advance the virtual clock.
    pub fn advance_ns(&mut self, ns: f64) {
        self.now_ns += ns;
    }

    /// Number of kernel launches so far.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Total in-kernel virtual time (excluding launch overhead).
    pub fn kernel_ns_total(&self) -> f64 {
        self.kernel_ns_total
    }

    /// Host-side simulator profiling summed over every launch so far:
    /// blocks simulated, wall-clock execution/merge time, overlay traffic.
    pub fn profile_total(&self) -> ExecProfile {
        self.profile_total
    }

    /// Look a loaded kernel up.
    pub fn kernel(&self, h: KernelHandle) -> Result<&LoadedKernel, RtError> {
        self.kernels.get(h.0).ok_or(RtError::BadHandle)
    }

    fn load(&mut self, k: LoadedKernel) -> KernelHandle {
        self.kernels.push(k);
        KernelHandle(self.kernels.len() - 1)
    }
}

/// Outcome of one launch.
#[derive(Clone, Debug)]
pub struct LaunchOutcome {
    /// Simulator report (exact stats + modelled kernel time).
    pub report: LaunchReport,
    /// API-side launch overhead that was added to the clock, ns.
    pub overhead_ns: f64,
}

impl LaunchOutcome {
    /// Host-side simulator profiling for this launch: blocks simulated,
    /// worker threads used, wall-clock execution and merge time.
    pub fn profile(&self) -> &ExecProfile {
        &self.report.profile
    }
}

/// The host-API surface shared by the CUDA-flavoured and OpenCL-flavoured
/// runtimes. Benchmarks are written against this trait so the *same host
/// logic* drives both programming models — the paper's "same implementation"
/// requirement (fair-comparison step 3).
pub trait Gpu {
    /// Which programming model this runtime exposes.
    fn api(&self) -> Api;
    /// The underlying session.
    fn session(&self) -> &Session;
    /// The underlying session, mutably.
    fn session_mut(&mut self) -> &mut Session;
    /// Fixed API-side kernel-submit overhead in ns (the paper's
    /// Section IV-B-4 kernel-launch-time difference).
    fn submit_overhead_ns(&self) -> f64;
    /// API-specific launch validation (the OpenCL runtime enforces device
    /// resource limits and returns `CL_*` errors; CUDA launches on its own
    /// vendor's hardware and only hits the simulator's checks).
    fn validate_launch(&self, kernel: &LoadedKernel, cfg: &LaunchConfig) -> Result<(), RtError>;

    /// The device specification.
    fn device(&self) -> &DeviceSpec {
        &self.session().device
    }

    /// Current virtual time in ns.
    fn now_ns(&self) -> f64 {
        self.session().now_ns()
    }

    /// Allocate device memory.
    fn malloc(&mut self, bytes: u64) -> Result<DevPtr, RtError> {
        Ok(self.session_mut().gmem.alloc(bytes)?)
    }

    /// Host-to-device transfer of raw bytes.
    fn h2d(&mut self, ptr: DevPtr, data: &[u8]) -> Result<(), RtError> {
        let s = self.session_mut();
        s.gmem.copy_in(ptr, data)?;
        let dur = MEMCPY_LATENCY_NS + data.len() as f64 / PCIE_GBS;
        let start = s.now_ns();
        s.record(SessionEvent::Transfer {
            dir: TransferDir::H2D,
            start_ns: start,
            dur_ns: dur,
            bytes: data.len() as u64,
        });
        s.advance_ns(dur);
        Ok(())
    }

    /// Device-to-host transfer of raw bytes.
    fn d2h(&mut self, ptr: DevPtr, data: &mut [u8]) -> Result<(), RtError> {
        let s = self.session_mut();
        s.gmem.copy_out(ptr, data)?;
        let dur = MEMCPY_LATENCY_NS + data.len() as f64 / PCIE_GBS;
        let start = s.now_ns();
        s.record(SessionEvent::Transfer {
            dir: TransferDir::D2H,
            start_ns: start,
            dur_ns: dur,
            bytes: data.len() as u64,
        });
        s.advance_ns(dur);
        Ok(())
    }

    /// How launches on this runtime are simulated (host thread count).
    fn exec_options(&self) -> ExecOptions {
        self.session().exec_options()
    }

    /// Set the simulation options for subsequent launches. Host-side only:
    /// reports stay bit-identical for every setting.
    fn set_exec_options(&mut self, opts: ExecOptions) {
        self.session_mut().set_exec_options(opts);
    }

    /// Turn session tracing on or off (see [`Session::set_tracing`]).
    fn set_tracing(&mut self, on: bool) {
        self.session_mut().set_tracing(on);
    }

    /// Events recorded since tracing was turned on.
    fn trace_events(&self) -> &[SessionEvent] {
        self.session().trace_events()
    }

    /// Deprecated alias for [`GpuExt::h2d_t`].
    #[deprecated(since = "0.2.0", note = "use the generic `h2d_t`")]
    fn h2d_f32(&mut self, ptr: DevPtr, data: &[f32]) -> Result<(), RtError> {
        self.h2d_t(ptr, data)
    }

    /// Deprecated alias for [`GpuExt::d2h_t`].
    #[deprecated(since = "0.2.0", note = "use the generic `d2h_t`")]
    fn d2h_f32(&mut self, ptr: DevPtr, len: usize) -> Result<Vec<f32>, RtError> {
        self.d2h_t(ptr, len)
    }

    /// Deprecated alias for [`GpuExt::h2d_t`].
    #[deprecated(since = "0.2.0", note = "use the generic `h2d_t`")]
    fn h2d_u32(&mut self, ptr: DevPtr, data: &[u32]) -> Result<(), RtError> {
        self.h2d_t(ptr, data)
    }

    /// Deprecated alias for [`GpuExt::d2h_t`].
    #[deprecated(since = "0.2.0", note = "use the generic `d2h_t`")]
    fn d2h_u32(&mut self, ptr: DevPtr, len: usize) -> Result<Vec<u32>, RtError> {
        self.d2h_t(ptr, len)
    }

    /// Deprecated alias for [`GpuExt::h2d_t`].
    #[deprecated(since = "0.2.0", note = "use the generic `h2d_t`")]
    fn h2d_i32(&mut self, ptr: DevPtr, data: &[i32]) -> Result<(), RtError> {
        self.h2d_t(ptr, data)
    }

    /// Deprecated alias for [`GpuExt::d2h_t`].
    #[deprecated(since = "0.2.0", note = "use the generic `d2h_t`")]
    fn d2h_i32(&mut self, ptr: DevPtr, len: usize) -> Result<Vec<i32>, RtError> {
        self.d2h_t(ptr, len)
    }

    /// Build a kernel through this API's front-end and load it.
    fn build(&mut self, def: &KernelDef) -> Result<KernelHandle, RtError> {
        let style = self.api().style();
        let cap = self.device().max_regs_per_thread;
        let compiled =
            compile_with_style(def, &style, cap).map_err(|e| RtError::Compile(e.to_string()))?;
        let resolved = compiled.exec.resolve().map_err(RtError::Compile)?;
        let mut const_bank = def.const_data.clone();
        // pad to 16 bytes like a real constant bank image
        const_bank.resize(const_bank.len().next_multiple_of(16), 0);
        let loaded = LoadedKernel {
            name: def.name.clone(),
            resolved: Arc::new(resolved),
            const_bank: Arc::new(const_bank),
            ptx_stats: compiled.ptx_stats,
            spilled: compiled.ptxas.spilled,
        };
        Ok(self.session_mut().load(loaded))
    }

    /// Launch a kernel; advances the virtual clock by the API overhead plus
    /// the modelled kernel duration. Object-safe core — call sites usually
    /// prefer [`GpuExt::launch`], which also takes builders by value.
    fn launch_config(
        &mut self,
        h: KernelHandle,
        cfg: &LaunchConfig,
    ) -> Result<LaunchOutcome, RtError> {
        let overhead = self.submit_overhead_ns() + self.device().hw_launch_ns;
        {
            let kernel = self.session().kernel(h)?;
            self.validate_launch(kernel, cfg)?;
        }
        let s = self.session_mut();
        // cheap Arc clones decouple the kernel from the session borrow
        let kernel = Arc::clone(&s.kernels[h.0].resolved);
        let const_bank = Arc::clone(&s.kernels[h.0].const_bank);
        let opts = s.exec;
        let report = sim_launch_with(&s.device, &kernel, &mut s.gmem, &const_bank, cfg, &opts)?;
        s.launches += 1;
        s.kernel_ns_total += report.timing.total_ns;
        s.profile_total.accumulate(&report.profile);
        if s.tracing() {
            let name = s.kernels[h.0].name.clone();
            let start = s.now_ns();
            s.record(SessionEvent::Launch {
                kernel: name,
                start_ns: start,
                overhead_ns: overhead,
                kernel_ns: report.timing.total_ns,
                grid: cfg.grid,
                block: cfg.block,
                stats: report.stats.clone(),
                timing: report.timing,
            });
        }
        s.advance_ns(overhead + report.timing.total_ns);
        Ok(LaunchOutcome {
            report,
            overhead_ns: overhead,
        })
    }
}

/// Generic conveniences over [`Gpu`], blanket-implemented for every
/// runtime *and* for `dyn Gpu` itself, so benchmarks written against
/// `&mut dyn Gpu` get the typed API with static dispatch.
pub trait GpuExt: Gpu {
    /// Launch a kernel from anything convertible to a [`LaunchConfig`]:
    /// an owned config, a `&LaunchConfig`, or a
    /// [`gpucmp_sim::LaunchConfigBuilder`].
    fn launch(
        &mut self,
        h: KernelHandle,
        cfg: impl Into<LaunchConfig>,
    ) -> Result<LaunchOutcome, RtError> {
        let cfg = cfg.into();
        self.launch_config(h, &cfg)
    }

    /// Upload a slice of any [`DeviceScalar`] type.
    fn h2d_t<T: DeviceScalar>(&mut self, ptr: DevPtr, data: &[T]) -> Result<(), RtError> {
        let mut bytes = Vec::with_capacity(data.len() * T::BYTES);
        for v in data {
            v.write_le(&mut bytes);
        }
        self.h2d(ptr, &bytes)
    }

    /// Download `len` elements of any [`DeviceScalar`] type.
    fn d2h_t<T: DeviceScalar>(&mut self, ptr: DevPtr, len: usize) -> Result<Vec<T>, RtError> {
        let mut bytes = vec![0u8; len * T::BYTES];
        self.d2h(ptr, &mut bytes)?;
        Ok(bytes.chunks_exact(T::BYTES).map(T::from_le).collect())
    }

    /// Allocate a typed device buffer of `len` elements.
    fn alloc<T: DeviceScalar>(&mut self, len: usize) -> Result<Buffer<T>, RtError> {
        let ptr = self.malloc((len * T::BYTES) as u64)?;
        Ok(Buffer::from_raw(ptr, len))
    }

    /// Upload into a typed buffer (panics if `data` outgrows the buffer).
    fn h2d_buf<T: DeviceScalar>(&mut self, buf: &Buffer<T>, data: &[T]) -> Result<(), RtError> {
        assert!(
            data.len() <= buf.len(),
            "upload of {} elements into Buffer of {}",
            data.len(),
            buf.len()
        );
        self.h2d_t(buf.ptr(), data)
    }

    /// Download a typed buffer in full.
    fn d2h_buf<T: DeviceScalar>(&mut self, buf: &Buffer<T>) -> Result<Vec<T>, RtError> {
        self.d2h_t(buf.ptr(), buf.len())
    }
}

impl<G: Gpu + ?Sized> GpuExt for G {}
