//! The shared device session and the `Gpu` host-API trait.
//!
//! The trait splits in two so it stays object-safe (benchmarks run against
//! `&mut dyn Gpu`): [`Gpu`] holds the dispatchable core (raw transfers,
//! build, [`Gpu::launch_config`]), and the blanket extension [`GpuExt`]
//! layers the generic typed API on top — [`GpuExt::h2d_t`] /
//! [`GpuExt::d2h_t`] over [`DeviceScalar`], typed [`GpuExt::alloc`]
//! returning [`Buffer`], and [`GpuExt::launch`] accepting any
//! `impl Into<LaunchConfig>` (a config, a reference, or a
//! [`gpucmp_sim::LaunchConfigBuilder`]).

use crate::buffer::{Buffer, DeviceScalar};
use crate::error::RtError;
use crate::inject::{FaultPlan, LaunchAction, TransferAction};
use gpucmp_compiler::{compile_with_style, Api, KernelDef};
use gpucmp_ptx::ResolvedKernel;
use gpucmp_sim::launch::Dim3;
use gpucmp_sim::timing::Timing;
use gpucmp_sim::{
    launch_with as sim_launch_with, DevPtr, DeviceFault, DeviceSpec, ExecOptions, ExecProfile,
    ExecStats, GlobalMemory, LaunchConfig, LaunchReport,
};
use std::sync::Arc;

/// PCIe effective host↔device bandwidth in GB/s (PCIe 2.0 x16 era).
pub const PCIE_GBS: f64 = 5.7;
/// Fixed per-transfer latency in ns.
pub const MEMCPY_LATENCY_NS: f64 = 10_000.0;
/// Default simulated device-memory arena (kept well under the cards' real
/// capacity so many sessions can coexist in host RAM).
pub const DEFAULT_ARENA_BYTES: u64 = 192 << 20;

/// Handle to a kernel loaded into a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelHandle(pub usize);

/// A kernel loaded into a session, ready to launch.
#[derive(Clone, Debug)]
pub struct LoadedKernel {
    /// Kernel name.
    pub name: String,
    /// Resolved executable form (shared so launches don't copy the body).
    pub resolved: Arc<ResolvedKernel>,
    /// Packed constant bank.
    pub const_bank: Arc<Vec<u8>>,
    /// Static PTX statistics (pre-backend), for Table V style analyses.
    pub ptx_stats: gpucmp_ptx::InstStats,
    /// Registers the backend had to spill against the device cap.
    pub spilled: u32,
}

impl LoadedKernel {
    /// Physical registers per thread.
    pub fn phys_regs(&self) -> u32 {
        self.resolved.kernel.phys_regs
    }

    /// Static shared memory per block in bytes.
    pub fn shared_bytes(&self) -> u32 {
        self.resolved.kernel.shared_bytes
    }

    /// Per-thread local (spill) bytes.
    pub fn local_bytes(&self) -> u32 {
        self.resolved.kernel.local_bytes
    }
}

/// Transfer direction of a recorded PCIe copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferDir {
    /// Host to device.
    H2D,
    /// Device to host.
    D2H,
}

/// One event of a traced session, on the virtual timeline.
///
/// Recorded only while [`Session::set_tracing`] is on; the stream is what
/// `gpucmp-trace` serialises to chrome-trace JSON.
// Launch is by far the most common variant in real sessions; boxing its
// counters would put an allocation on every launch to save bytes on the
// rare Transfer records.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum SessionEvent {
    /// A kernel launch (API overhead followed by the kernel itself).
    Launch {
        /// Kernel name.
        kernel: String,
        /// Virtual time of API submission, ns.
        start_ns: f64,
        /// API + hardware launch overhead before the kernel starts, ns.
        overhead_ns: f64,
        /// Modelled kernel duration, ns.
        kernel_ns: f64,
        /// Grid dimensions in blocks.
        grid: Dim3,
        /// Block dimensions in threads.
        block: Dim3,
        /// Exact execution counters.
        stats: ExecStats,
        /// Modelled timing breakdown.
        timing: Timing,
    },
    /// A PCIe transfer.
    Transfer {
        /// Direction.
        dir: TransferDir,
        /// Virtual start time, ns.
        start_ns: f64,
        /// Duration, ns.
        dur_ns: f64,
        /// Bytes moved.
        bytes: u64,
    },
    /// A device fault pinned to the virtual timeline: either a memcheck
    /// record from a completed launch or the fault that aborted one.
    Fault {
        /// Name of the faulting kernel.
        kernel: String,
        /// Virtual time the fault is pinned to, ns.
        t_ns: f64,
        /// Human-readable diagnostics (fault kind + site).
        desc: String,
        /// Offending instruction index, when attributable.
        pc: Option<u32>,
        /// Faulting block coordinates, when attributable.
        block: Option<[u32; 3]>,
        /// Faulting thread coordinates, when attributable.
        thread: Option<[u32; 3]>,
        /// Compute unit the faulting block was scheduled on (round-robin
        /// distribution), `0` for unsited faults.
        cu: u32,
    },
}

/// Build the trace event for one device fault.
fn fault_event(kernel: &str, t_ns: f64, fault: &DeviceFault, grid: Dim3, cus: u32) -> SessionEvent {
    SessionEvent::Fault {
        kernel: kernel.to_string(),
        t_ns,
        desc: fault.to_string(),
        pc: fault.site.map(|s| s.pc),
        block: fault.site.map(|s| s.block),
        thread: fault.site.map(|s| s.thread),
        cu: fault
            .linear_block(grid.x, grid.y)
            .map_or(0, |b| (b % cus.max(1) as u64) as u32),
    }
}

/// Whether `GPUCMP_MEMCHECK` asks for the memcheck sanitizer.
fn memcheck_env() -> bool {
    std::env::var("GPUCMP_MEMCHECK")
        .map(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false")
        })
        .unwrap_or(false)
}

/// One device context: memory, loaded kernels, and the virtual clock.
#[derive(Debug)]
pub struct Session {
    /// The simulated device.
    pub device: DeviceSpec,
    /// Device global memory.
    pub gmem: GlobalMemory,
    kernels: Vec<LoadedKernel>,
    now_ns: f64,
    launches: u64,
    kernel_ns_total: f64,
    exec: ExecOptions,
    profile_total: ExecProfile,
    trace: Option<Vec<SessionEvent>>,
    /// Display of the device fault that poisoned the context, if any.
    fault: Option<String>,
    memcheck: bool,
    inject: Option<FaultPlan>,
}

impl Session {
    /// Create a session on `device` with the default memory arena.
    ///
    /// The memcheck sanitizer starts on if the `GPUCMP_MEMCHECK`
    /// environment variable is set to anything but `0`/`false`.
    pub fn new(device: DeviceSpec) -> Self {
        let cap = (device.mem_capacity_mib as u64 * 1024 * 1024).min(DEFAULT_ARENA_BYTES);
        Session {
            device,
            gmem: GlobalMemory::new(cap),
            kernels: Vec::new(),
            now_ns: 0.0,
            launches: 0,
            kernel_ns_total: 0.0,
            exec: ExecOptions::default(),
            profile_total: ExecProfile::default(),
            trace: None,
            fault: None,
            memcheck: memcheck_env(),
            inject: None,
        }
    }

    /// The fault that poisoned this context, if any (CUDA-style sticky
    /// error semantics: once a kernel faults, every subsequent launch,
    /// transfer, or allocation fails with [`RtError::ContextLost`] until
    /// [`Session::reset`]).
    pub fn fault(&self) -> Option<&str> {
        self.fault.as_deref()
    }

    /// Error out if the context is poisoned.
    fn check_live(&self) -> Result<(), RtError> {
        match &self.fault {
            Some(origin) => Err(RtError::ContextLost {
                origin: origin.clone(),
            }),
            None => Ok(()),
        }
    }

    /// Mark the context as lost to `origin` (a device-fault description).
    pub(crate) fn poison(&mut self, origin: String) {
        // first fault wins, like the CUDA sticky error
        self.fault.get_or_insert(origin);
    }

    /// Reset the context, as `cudaDeviceReset` would: the sticky fault is
    /// cleared, device memory is wiped, loaded kernels and the virtual
    /// clock are discarded. Existing [`KernelHandle`]s and [`DevPtr`]s
    /// are invalidated. Host-side knobs (exec options, memcheck, tracing,
    /// fault plan) survive; the trace buffer restarts empty.
    pub fn reset(&mut self) {
        let cap = self.gmem.capacity();
        self.gmem = GlobalMemory::new(cap);
        self.kernels.clear();
        self.now_ns = 0.0;
        self.launches = 0;
        self.kernel_ns_total = 0.0;
        self.profile_total = ExecProfile::default();
        if let Some(t) = &mut self.trace {
            t.clear();
        }
        self.fault = None;
    }

    /// Whether the memcheck sanitizer is on for subsequent launches.
    pub fn memcheck(&self) -> bool {
        self.memcheck
    }

    /// Turn the memcheck sanitizer on or off. While on, memory-access
    /// faults are recorded per launch ([`gpucmp_sim::LaunchReport::faults`],
    /// plus [`SessionEvent::Fault`] when tracing) instead of aborting.
    pub fn set_memcheck(&mut self, on: bool) {
        self.memcheck = on;
    }

    /// Attach (or clear) a deterministic fault-injection plan.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.inject = plan;
    }

    /// The attached fault-injection plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.inject.as_ref()
    }

    /// Turn session tracing on or off. While on, every launch and PCIe
    /// transfer is recorded as a [`SessionEvent`] for chrome-trace export.
    /// Turning tracing off discards any recorded events.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = if on { Some(Vec::new()) } else { None };
    }

    /// Whether session tracing is currently on.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Events recorded so far (empty unless tracing is on).
    pub fn trace_events(&self) -> &[SessionEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Record an event if tracing is on.
    pub(crate) fn record(&mut self, e: SessionEvent) {
        if let Some(t) = &mut self.trace {
            t.push(e);
        }
    }

    /// How launches are simulated (host thread count). Purely a host-side
    /// knob: reports are bit-identical for every setting.
    pub fn exec_options(&self) -> ExecOptions {
        self.exec
    }

    /// Set the simulation options for subsequent launches.
    pub fn set_exec_options(&mut self, opts: ExecOptions) {
        self.exec = opts;
    }

    /// Current virtual time in ns.
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// Advance the virtual clock.
    pub fn advance_ns(&mut self, ns: f64) {
        self.now_ns += ns;
    }

    /// Number of kernel launches so far.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Total in-kernel virtual time (excluding launch overhead).
    pub fn kernel_ns_total(&self) -> f64 {
        self.kernel_ns_total
    }

    /// Host-side simulator profiling summed over every launch so far:
    /// blocks simulated, wall-clock execution/merge time, overlay traffic.
    pub fn profile_total(&self) -> ExecProfile {
        self.profile_total
    }

    /// Look a loaded kernel up.
    pub fn kernel(&self, h: KernelHandle) -> Result<&LoadedKernel, RtError> {
        self.kernels.get(h.0).ok_or(RtError::BadHandle)
    }

    fn load(&mut self, k: LoadedKernel) -> KernelHandle {
        self.kernels.push(k);
        KernelHandle(self.kernels.len() - 1)
    }
}

/// Outcome of one launch.
#[derive(Clone, Debug)]
pub struct LaunchOutcome {
    /// Simulator report (exact stats + modelled kernel time).
    pub report: LaunchReport,
    /// API-side launch overhead that was added to the clock, ns.
    pub overhead_ns: f64,
}

impl LaunchOutcome {
    /// Host-side simulator profiling for this launch: blocks simulated,
    /// worker threads used, wall-clock execution and merge time.
    pub fn profile(&self) -> &ExecProfile {
        &self.report.profile
    }
}

/// The host-API surface shared by the CUDA-flavoured and OpenCL-flavoured
/// runtimes. Benchmarks are written against this trait so the *same host
/// logic* drives both programming models — the paper's "same implementation"
/// requirement (fair-comparison step 3).
pub trait Gpu {
    /// Which programming model this runtime exposes.
    fn api(&self) -> Api;
    /// The underlying session.
    fn session(&self) -> &Session;
    /// The underlying session, mutably.
    fn session_mut(&mut self) -> &mut Session;
    /// Fixed API-side kernel-submit overhead in ns (the paper's
    /// Section IV-B-4 kernel-launch-time difference).
    fn submit_overhead_ns(&self) -> f64;
    /// API-specific launch validation (the OpenCL runtime enforces device
    /// resource limits and returns `CL_*` errors; CUDA launches on its own
    /// vendor's hardware and only hits the simulator's checks).
    fn validate_launch(&self, kernel: &LoadedKernel, cfg: &LaunchConfig) -> Result<(), RtError>;

    /// The device specification.
    fn device(&self) -> &DeviceSpec {
        &self.session().device
    }

    /// Current virtual time in ns.
    fn now_ns(&self) -> f64 {
        self.session().now_ns()
    }

    /// Allocate device memory. Fails with [`RtError::OutOfMemory`] when
    /// the arena is exhausted and [`RtError::ContextLost`] on a poisoned
    /// context.
    fn malloc(&mut self, bytes: u64) -> Result<DevPtr, RtError> {
        self.session().check_live()?;
        let s = self.session_mut();
        if let Some(nth) = s.inject.as_mut().and_then(|p| p.on_malloc()) {
            return Err(RtError::Injected { op: "malloc", nth });
        }
        Ok(s.gmem.alloc(bytes)?)
    }

    /// Host-to-device transfer of raw bytes. The transfer must fit the
    /// destination allocation: writing past its end is
    /// [`RtError::TransferSize`], not silent corruption of a neighbour.
    fn h2d(&mut self, ptr: DevPtr, data: &[u8]) -> Result<(), RtError> {
        self.session().check_live()?;
        let s = self.session_mut();
        if let Some((start, bytes)) = s.gmem.alloc_containing(ptr.0) {
            let available = start + bytes - ptr.0;
            if data.len() as u64 > available {
                return Err(RtError::TransferSize {
                    op: "h2d",
                    requested: data.len() as u64,
                    available,
                });
            }
        }
        let action = s
            .inject
            .as_mut()
            .map_or(TransferAction::Pass, |p| p.on_h2d());
        match action {
            TransferAction::Fail(nth) => return Err(RtError::Injected { op: "h2d", nth }),
            TransferAction::Corrupt if !data.is_empty() => {
                let mut corrupted = data.to_vec();
                corrupted[data.len() / 2] ^= 0x01;
                s.gmem.copy_in(ptr, &corrupted)?;
            }
            _ => s.gmem.copy_in(ptr, data)?,
        }
        let dur = MEMCPY_LATENCY_NS + data.len() as f64 / PCIE_GBS;
        let start = s.now_ns();
        s.record(SessionEvent::Transfer {
            dir: TransferDir::H2D,
            start_ns: start,
            dur_ns: dur,
            bytes: data.len() as u64,
        });
        s.advance_ns(dur);
        Ok(())
    }

    /// Device-to-host transfer of raw bytes. The requested length must
    /// fit the source allocation (see [`Gpu::h2d`]).
    fn d2h(&mut self, ptr: DevPtr, data: &mut [u8]) -> Result<(), RtError> {
        self.session().check_live()?;
        let s = self.session_mut();
        if let Some((start, bytes)) = s.gmem.alloc_containing(ptr.0) {
            let available = start + bytes - ptr.0;
            if data.len() as u64 > available {
                return Err(RtError::TransferSize {
                    op: "d2h",
                    requested: data.len() as u64,
                    available,
                });
            }
        }
        s.gmem.copy_out(ptr, data)?;
        let dur = MEMCPY_LATENCY_NS + data.len() as f64 / PCIE_GBS;
        let start = s.now_ns();
        s.record(SessionEvent::Transfer {
            dir: TransferDir::D2H,
            start_ns: start,
            dur_ns: dur,
            bytes: data.len() as u64,
        });
        s.advance_ns(dur);
        Ok(())
    }

    /// The sticky device fault poisoning this context, if any.
    fn fault(&self) -> Option<&str> {
        self.session().fault()
    }

    /// Reset the context after a device fault (see [`Session::reset`]).
    fn reset(&mut self) {
        self.session_mut().reset();
    }

    /// Turn the memcheck sanitizer on or off for subsequent launches
    /// (see [`Session::set_memcheck`]).
    fn set_memcheck(&mut self, on: bool) {
        self.session_mut().set_memcheck(on);
    }

    /// Attach (or clear) a deterministic fault-injection plan
    /// (see [`crate::inject::FaultPlan`]).
    fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.session_mut().set_fault_plan(plan);
    }

    /// How launches on this runtime are simulated (host thread count).
    fn exec_options(&self) -> ExecOptions {
        self.session().exec_options()
    }

    /// Set the simulation options for subsequent launches. Host-side only:
    /// reports stay bit-identical for every setting.
    fn set_exec_options(&mut self, opts: ExecOptions) {
        self.session_mut().set_exec_options(opts);
    }

    /// Turn session tracing on or off (see [`Session::set_tracing`]).
    fn set_tracing(&mut self, on: bool) {
        self.session_mut().set_tracing(on);
    }

    /// Events recorded since tracing was turned on.
    fn trace_events(&self) -> &[SessionEvent] {
        self.session().trace_events()
    }

    /// Deprecated alias for [`GpuExt::h2d_t`].
    #[deprecated(since = "0.2.0", note = "use the generic `h2d_t`")]
    fn h2d_f32(&mut self, ptr: DevPtr, data: &[f32]) -> Result<(), RtError> {
        self.h2d_t(ptr, data)
    }

    /// Deprecated alias for [`GpuExt::d2h_t`].
    #[deprecated(since = "0.2.0", note = "use the generic `d2h_t`")]
    fn d2h_f32(&mut self, ptr: DevPtr, len: usize) -> Result<Vec<f32>, RtError> {
        self.d2h_t(ptr, len)
    }

    /// Deprecated alias for [`GpuExt::h2d_t`].
    #[deprecated(since = "0.2.0", note = "use the generic `h2d_t`")]
    fn h2d_u32(&mut self, ptr: DevPtr, data: &[u32]) -> Result<(), RtError> {
        self.h2d_t(ptr, data)
    }

    /// Deprecated alias for [`GpuExt::d2h_t`].
    #[deprecated(since = "0.2.0", note = "use the generic `d2h_t`")]
    fn d2h_u32(&mut self, ptr: DevPtr, len: usize) -> Result<Vec<u32>, RtError> {
        self.d2h_t(ptr, len)
    }

    /// Deprecated alias for [`GpuExt::h2d_t`].
    #[deprecated(since = "0.2.0", note = "use the generic `h2d_t`")]
    fn h2d_i32(&mut self, ptr: DevPtr, data: &[i32]) -> Result<(), RtError> {
        self.h2d_t(ptr, data)
    }

    /// Deprecated alias for [`GpuExt::d2h_t`].
    #[deprecated(since = "0.2.0", note = "use the generic `d2h_t`")]
    fn d2h_i32(&mut self, ptr: DevPtr, len: usize) -> Result<Vec<i32>, RtError> {
        self.d2h_t(ptr, len)
    }

    /// Build a kernel through this API's front-end and load it.
    fn build(&mut self, def: &KernelDef) -> Result<KernelHandle, RtError> {
        let style = self.api().style();
        let cap = self.device().max_regs_per_thread;
        let compiled =
            compile_with_style(def, &style, cap).map_err(|e| RtError::Compile(e.to_string()))?;
        let resolved = compiled.exec.resolve().map_err(RtError::Compile)?;
        let mut const_bank = def.const_data.clone();
        // pad to 16 bytes like a real constant bank image
        const_bank.resize(const_bank.len().next_multiple_of(16), 0);
        let loaded = LoadedKernel {
            name: def.name.clone(),
            resolved: Arc::new(resolved),
            const_bank: Arc::new(const_bank),
            ptx_stats: compiled.ptx_stats,
            spilled: compiled.ptxas.spilled,
        };
        Ok(self.session_mut().load(loaded))
    }

    /// Launch a kernel; advances the virtual clock by the API overhead plus
    /// the modelled kernel duration. Object-safe core — call sites usually
    /// prefer [`GpuExt::launch`], which also takes builders by value.
    fn launch_config(
        &mut self,
        h: KernelHandle,
        cfg: &LaunchConfig,
    ) -> Result<LaunchOutcome, RtError> {
        self.session().check_live()?;
        let overhead = self.submit_overhead_ns() + self.device().hw_launch_ns;
        {
            let kernel = self.session().kernel(h)?;
            self.validate_launch(kernel, cfg)?;
        }
        let s = self.session_mut();
        let action = s
            .inject
            .as_mut()
            .map_or(LaunchAction::Pass, |p| p.on_launch());
        if let LaunchAction::Fail(nth) = action {
            return Err(RtError::Injected { op: "launch", nth });
        }
        let starved;
        let cfg = if let LaunchAction::Starve(budget) = action {
            let mut c = cfg.clone();
            c.inst_budget = budget;
            starved = c;
            &starved
        } else {
            cfg
        };
        // cheap Arc clones decouple the kernel from the session borrow
        let kernel = Arc::clone(&s.kernels[h.0].resolved);
        let const_bank = Arc::clone(&s.kernels[h.0].const_bank);
        let name = s.kernels[h.0].name.clone();
        let opts = s.exec.memcheck(s.memcheck);
        let report = match sim_launch_with(&s.device, &kernel, &mut s.gmem, &const_bank, cfg, &opts)
        {
            Ok(r) => r,
            Err(e) => {
                let mut err = RtError::from(e);
                if let RtError::DeviceFault { kernel: k, fault } = &mut err {
                    k.clone_from(&name);
                    let ev =
                        fault_event(&name, s.now_ns(), fault, cfg.grid, s.device.compute_units);
                    s.record(ev);
                }
                if err.is_sticky() {
                    // CUDA sticky semantics: the context is lost until reset
                    s.poison(err.to_string());
                }
                return Err(err);
            }
        };
        // Memcheck records: suppressed access faults, pinned to kernel start.
        if !report.faults.is_empty() && s.tracing() {
            let t = s.now_ns() + overhead;
            let cus = s.device.compute_units;
            let evs: Vec<SessionEvent> = report
                .faults
                .iter()
                .map(|f| fault_event(&name, t, f, cfg.grid, cus))
                .collect();
            for ev in evs {
                s.record(ev);
            }
        }
        s.launches += 1;
        s.kernel_ns_total += report.timing.total_ns;
        s.profile_total.accumulate(&report.profile);
        if s.tracing() {
            let name = s.kernels[h.0].name.clone();
            let start = s.now_ns();
            s.record(SessionEvent::Launch {
                kernel: name,
                start_ns: start,
                overhead_ns: overhead,
                kernel_ns: report.timing.total_ns,
                grid: cfg.grid,
                block: cfg.block,
                stats: report.stats.clone(),
                timing: report.timing,
            });
        }
        s.advance_ns(overhead + report.timing.total_ns);
        Ok(LaunchOutcome {
            report,
            overhead_ns: overhead,
        })
    }
}

/// Generic conveniences over [`Gpu`], blanket-implemented for every
/// runtime *and* for `dyn Gpu` itself, so benchmarks written against
/// `&mut dyn Gpu` get the typed API with static dispatch.
pub trait GpuExt: Gpu {
    /// Launch a kernel from anything convertible to a [`LaunchConfig`]:
    /// an owned config, a `&LaunchConfig`, or a
    /// [`gpucmp_sim::LaunchConfigBuilder`].
    fn launch(
        &mut self,
        h: KernelHandle,
        cfg: impl Into<LaunchConfig>,
    ) -> Result<LaunchOutcome, RtError> {
        let cfg = cfg.into();
        self.launch_config(h, &cfg)
    }

    /// Upload a slice of any [`DeviceScalar`] type.
    fn h2d_t<T: DeviceScalar>(&mut self, ptr: DevPtr, data: &[T]) -> Result<(), RtError> {
        let mut bytes = Vec::with_capacity(data.len() * T::BYTES);
        for v in data {
            v.write_le(&mut bytes);
        }
        self.h2d(ptr, &bytes)
    }

    /// Download `len` elements of any [`DeviceScalar`] type.
    fn d2h_t<T: DeviceScalar>(&mut self, ptr: DevPtr, len: usize) -> Result<Vec<T>, RtError> {
        let mut bytes = vec![0u8; len * T::BYTES];
        self.d2h(ptr, &mut bytes)?;
        Ok(bytes.chunks_exact(T::BYTES).map(T::from_le).collect())
    }

    /// Allocate a typed device buffer of `len` elements.
    fn alloc<T: DeviceScalar>(&mut self, len: usize) -> Result<Buffer<T>, RtError> {
        let ptr = self.malloc((len * T::BYTES) as u64)?;
        Ok(Buffer::from_raw(ptr, len))
    }

    /// Upload into a typed buffer. `data` outgrowing the buffer is
    /// [`RtError::TransferSize`], not a panic.
    fn h2d_buf<T: DeviceScalar>(&mut self, buf: &Buffer<T>, data: &[T]) -> Result<(), RtError> {
        if data.len() > buf.len() {
            return Err(RtError::TransferSize {
                op: "h2d_buf",
                requested: (data.len() * T::BYTES) as u64,
                available: buf.bytes(),
            });
        }
        self.h2d_t(buf.ptr(), data)
    }

    /// Download a typed buffer in full.
    fn d2h_buf<T: DeviceScalar>(&mut self, buf: &Buffer<T>) -> Result<Vec<T>, RtError> {
        self.d2h_t(buf.ptr(), buf.len())
    }
}

impl<G: Gpu + ?Sized> GpuExt for G {}
