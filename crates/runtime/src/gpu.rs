//! The shared device session and the `Gpu` host-API trait.

use crate::error::RtError;
use gpucmp_compiler::{compile_with_style, Api, KernelDef};
use gpucmp_ptx::ResolvedKernel;
use std::sync::Arc;
use gpucmp_sim::{launch as sim_launch, DevPtr, DeviceSpec, GlobalMemory, LaunchConfig, LaunchReport};

/// PCIe effective host↔device bandwidth in GB/s (PCIe 2.0 x16 era).
pub const PCIE_GBS: f64 = 5.7;
/// Fixed per-transfer latency in ns.
pub const MEMCPY_LATENCY_NS: f64 = 10_000.0;
/// Default simulated device-memory arena (kept well under the cards' real
/// capacity so many sessions can coexist in host RAM).
pub const DEFAULT_ARENA_BYTES: u64 = 192 << 20;

/// Handle to a kernel loaded into a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelHandle(pub usize);

/// A kernel loaded into a session, ready to launch.
#[derive(Clone, Debug)]
pub struct LoadedKernel {
    /// Kernel name.
    pub name: String,
    /// Resolved executable form (shared so launches don't copy the body).
    pub resolved: Arc<ResolvedKernel>,
    /// Packed constant bank.
    pub const_bank: Arc<Vec<u8>>,
    /// Static PTX statistics (pre-backend), for Table V style analyses.
    pub ptx_stats: gpucmp_ptx::InstStats,
    /// Registers the backend had to spill against the device cap.
    pub spilled: u32,
}

impl LoadedKernel {
    /// Physical registers per thread.
    pub fn phys_regs(&self) -> u32 {
        self.resolved.kernel.phys_regs
    }

    /// Static shared memory per block in bytes.
    pub fn shared_bytes(&self) -> u32 {
        self.resolved.kernel.shared_bytes
    }

    /// Per-thread local (spill) bytes.
    pub fn local_bytes(&self) -> u32 {
        self.resolved.kernel.local_bytes
    }
}

/// One device context: memory, loaded kernels, and the virtual clock.
#[derive(Debug)]
pub struct Session {
    /// The simulated device.
    pub device: DeviceSpec,
    /// Device global memory.
    pub gmem: GlobalMemory,
    kernels: Vec<LoadedKernel>,
    now_ns: f64,
    launches: u64,
    kernel_ns_total: f64,
}

impl Session {
    /// Create a session on `device` with the default memory arena.
    pub fn new(device: DeviceSpec) -> Self {
        let cap = (device.mem_capacity_mib as u64 * 1024 * 1024).min(DEFAULT_ARENA_BYTES);
        Session {
            device,
            gmem: GlobalMemory::new(cap),
            kernels: Vec::new(),
            now_ns: 0.0,
            launches: 0,
            kernel_ns_total: 0.0,
        }
    }

    /// Current virtual time in ns.
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// Advance the virtual clock.
    pub fn advance_ns(&mut self, ns: f64) {
        self.now_ns += ns;
    }

    /// Number of kernel launches so far.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Total in-kernel virtual time (excluding launch overhead).
    pub fn kernel_ns_total(&self) -> f64 {
        self.kernel_ns_total
    }

    /// Look a loaded kernel up.
    pub fn kernel(&self, h: KernelHandle) -> Result<&LoadedKernel, RtError> {
        self.kernels.get(h.0).ok_or(RtError::BadHandle)
    }

    fn load(&mut self, k: LoadedKernel) -> KernelHandle {
        self.kernels.push(k);
        KernelHandle(self.kernels.len() - 1)
    }
}

/// Outcome of one launch.
#[derive(Clone, Debug)]
pub struct LaunchOutcome {
    /// Simulator report (exact stats + modelled kernel time).
    pub report: LaunchReport,
    /// API-side launch overhead that was added to the clock, ns.
    pub overhead_ns: f64,
}

/// The host-API surface shared by the CUDA-flavoured and OpenCL-flavoured
/// runtimes. Benchmarks are written against this trait so the *same host
/// logic* drives both programming models — the paper's "same implementation"
/// requirement (fair-comparison step 3).
pub trait Gpu {
    /// Which programming model this runtime exposes.
    fn api(&self) -> Api;
    /// The underlying session.
    fn session(&self) -> &Session;
    /// The underlying session, mutably.
    fn session_mut(&mut self) -> &mut Session;
    /// Fixed API-side kernel-submit overhead in ns (the paper's
    /// Section IV-B-4 kernel-launch-time difference).
    fn submit_overhead_ns(&self) -> f64;
    /// API-specific launch validation (the OpenCL runtime enforces device
    /// resource limits and returns `CL_*` errors; CUDA launches on its own
    /// vendor's hardware and only hits the simulator's checks).
    fn validate_launch(&self, kernel: &LoadedKernel, cfg: &LaunchConfig) -> Result<(), RtError>;

    /// The device specification.
    fn device(&self) -> &DeviceSpec {
        &self.session().device
    }

    /// Current virtual time in ns.
    fn now_ns(&self) -> f64 {
        self.session().now_ns()
    }

    /// Allocate device memory.
    fn malloc(&mut self, bytes: u64) -> Result<DevPtr, RtError> {
        Ok(self.session_mut().gmem.alloc(bytes)?)
    }

    /// Host-to-device transfer of raw bytes.
    fn h2d(&mut self, ptr: DevPtr, data: &[u8]) -> Result<(), RtError> {
        let s = self.session_mut();
        s.gmem.copy_in(ptr, data)?;
        s.advance_ns(MEMCPY_LATENCY_NS + data.len() as f64 / PCIE_GBS);
        Ok(())
    }

    /// Device-to-host transfer of raw bytes.
    fn d2h(&mut self, ptr: DevPtr, data: &mut [u8]) -> Result<(), RtError> {
        let s = self.session_mut();
        s.gmem.copy_out(ptr, data)?;
        s.advance_ns(MEMCPY_LATENCY_NS + data.len() as f64 / PCIE_GBS);
        Ok(())
    }

    /// Typed convenience: upload f32 slice.
    fn h2d_f32(&mut self, ptr: DevPtr, data: &[f32]) -> Result<(), RtError> {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.h2d(ptr, &bytes)
    }

    /// Typed convenience: download f32 slice.
    fn d2h_f32(&mut self, ptr: DevPtr, len: usize) -> Result<Vec<f32>, RtError> {
        let mut bytes = vec![0u8; len * 4];
        self.d2h(ptr, &mut bytes)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Typed convenience: upload u32 slice.
    fn h2d_u32(&mut self, ptr: DevPtr, data: &[u32]) -> Result<(), RtError> {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.h2d(ptr, &bytes)
    }

    /// Typed convenience: download u32 slice.
    fn d2h_u32(&mut self, ptr: DevPtr, len: usize) -> Result<Vec<u32>, RtError> {
        let mut bytes = vec![0u8; len * 4];
        self.d2h(ptr, &mut bytes)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Typed convenience: upload i32 slice.
    fn h2d_i32(&mut self, ptr: DevPtr, data: &[i32]) -> Result<(), RtError> {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.h2d(ptr, &bytes)
    }

    /// Typed convenience: download i32 slice.
    fn d2h_i32(&mut self, ptr: DevPtr, len: usize) -> Result<Vec<i32>, RtError> {
        let mut bytes = vec![0u8; len * 4];
        self.d2h(ptr, &mut bytes)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Build a kernel through this API's front-end and load it.
    fn build(&mut self, def: &KernelDef) -> Result<KernelHandle, RtError> {
        let style = self.api().style();
        let cap = self.device().max_regs_per_thread;
        let compiled = compile_with_style(def, &style, cap)
            .map_err(|e| RtError::Compile(e.to_string()))?;
        let resolved = compiled
            .exec
            .resolve()
            .map_err(RtError::Compile)?;
        let mut const_bank = def.const_data.clone();
        // pad to 16 bytes like a real constant bank image
        const_bank.resize(const_bank.len().next_multiple_of(16), 0);
        let loaded = LoadedKernel {
            name: def.name.clone(),
            resolved: Arc::new(resolved),
            const_bank: Arc::new(const_bank),
            ptx_stats: compiled.ptx_stats,
            spilled: compiled.ptxas.spilled,
        };
        Ok(self.session_mut().load(loaded))
    }

    /// Launch a kernel; advances the virtual clock by the API overhead plus
    /// the modelled kernel duration.
    fn launch(&mut self, h: KernelHandle, cfg: &LaunchConfig) -> Result<LaunchOutcome, RtError> {
        let overhead = self.submit_overhead_ns() + self.device().hw_launch_ns;
        {
            let kernel = self.session().kernel(h)?;
            self.validate_launch(kernel, cfg)?;
        }
        let s = self.session_mut();
        // cheap Arc clones decouple the kernel from the session borrow
        let kernel = Arc::clone(&s.kernels[h.0].resolved);
        let const_bank = Arc::clone(&s.kernels[h.0].const_bank);
        let report = sim_launch(&s.device, &kernel, &mut s.gmem, &const_bank, cfg)?;
        s.launches += 1;
        s.kernel_ns_total += report.timing.total_ns;
        s.advance_ns(overhead + report.timing.total_ns);
        Ok(LaunchOutcome {
            report,
            overhead_ns: overhead,
        })
    }
}
