//! The shared device session and the `Gpu` host-API trait.
//!
//! The trait splits in two so it stays object-safe (benchmarks run against
//! `&mut dyn Gpu`): [`Gpu`] holds the dispatchable core (raw transfers,
//! build, [`Gpu::launch_config`]), and the blanket extension [`GpuExt`]
//! layers the generic typed API on top — [`GpuExt::h2d_t`] /
//! [`GpuExt::d2h_t`] over [`DeviceScalar`], typed [`GpuExt::alloc`]
//! returning [`Buffer`], and [`GpuExt::launch`] accepting any
//! `impl Into<LaunchConfig>` (a config, a reference, or a
//! [`gpucmp_sim::LaunchConfigBuilder`]).

use crate::buffer::{Buffer, DeviceScalar};
use crate::error::RtError;
use crate::inject::{FaultPlan, LaunchAction, TransferAction};
use crate::stream::{Event, PendingOp, PendingPayload, ResetReport, Stream, StreamState};
use gpucmp_compiler::{compile_with_style, Api, KernelDef};
use gpucmp_ptx::{kernel_hash, ResolvedKernel};
use gpucmp_sim::launch::Dim3;
use gpucmp_sim::timing::{TimelineOp, TimelineResource, TimelineState, Timing};
use gpucmp_sim::{
    decode_kernel, launch_with_code as sim_launch_with_code, DecodedKernel, DevPtr, DeviceFault,
    DeviceSpec, ExecOptions, ExecProfile, ExecStats, ExecTier, GlobalMemory, LaunchConfig,
    LaunchReport,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// PCIe effective host↔device bandwidth in GB/s (PCIe 2.0 x16 era).
pub const PCIE_GBS: f64 = 5.7;
/// Fixed per-transfer latency in ns.
pub const MEMCPY_LATENCY_NS: f64 = 10_000.0;
/// Default simulated device-memory arena (kept well under the cards' real
/// capacity so many sessions can coexist in host RAM).
pub const DEFAULT_ARENA_BYTES: u64 = 192 << 20;

/// Handle to a kernel loaded into a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelHandle(pub usize);

/// A kernel loaded into a session, ready to launch.
#[derive(Clone, Debug)]
pub struct LoadedKernel {
    /// Kernel name.
    pub name: String,
    /// Resolved executable form (shared so launches don't copy the body).
    pub resolved: Arc<ResolvedKernel>,
    /// Packed constant bank.
    pub const_bank: Arc<Vec<u8>>,
    /// Static PTX statistics (pre-backend), for Table V style analyses.
    pub ptx_stats: gpucmp_ptx::InstStats,
    /// Registers the backend had to spill against the device cap.
    pub spilled: u32,
    /// Stable content hash of the executable form — the key into the
    /// session's pre-decoded code cache.
    pub code_hash: u64,
}

impl LoadedKernel {
    /// Physical registers per thread.
    pub fn phys_regs(&self) -> u32 {
        self.resolved.kernel.phys_regs
    }

    /// Static shared memory per block in bytes.
    pub fn shared_bytes(&self) -> u32 {
        self.resolved.kernel.shared_bytes
    }

    /// Per-thread local (spill) bytes.
    pub fn local_bytes(&self) -> u32 {
        self.resolved.kernel.local_bytes
    }
}

/// Transfer direction of a recorded PCIe copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferDir {
    /// Host to device.
    H2D,
    /// Device to host.
    D2H,
}

/// One event of a traced session, on the virtual timeline.
///
/// Recorded only while [`Session::set_tracing`] is on; the stream is what
/// `gpucmp-trace` serialises to chrome-trace JSON.
// Launch is by far the most common variant in real sessions; boxing its
// counters would put an allocation on every launch to save bytes on the
// rare Transfer records.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum SessionEvent {
    /// A kernel launch (API overhead followed by the kernel itself).
    Launch {
        /// Kernel name.
        kernel: String,
        /// Virtual time of API submission, ns.
        start_ns: f64,
        /// API + hardware launch overhead before the kernel starts, ns.
        overhead_ns: f64,
        /// Modelled kernel duration, ns.
        kernel_ns: f64,
        /// Grid dimensions in blocks.
        grid: Dim3,
        /// Block dimensions in threads.
        block: Dim3,
        /// Exact execution counters.
        stats: ExecStats,
        /// Modelled timing breakdown.
        timing: Timing,
        /// Stream the launch ran on (0 = default stream).
        stream: u32,
    },
    /// A PCIe transfer.
    Transfer {
        /// Direction.
        dir: TransferDir,
        /// Virtual start time, ns.
        start_ns: f64,
        /// Duration, ns.
        dur_ns: f64,
        /// Bytes moved.
        bytes: u64,
        /// Stream the transfer ran on (0 = default stream).
        stream: u32,
    },
    /// A device fault pinned to the virtual timeline: either a memcheck
    /// record from a completed launch or the fault that aborted one.
    Fault {
        /// Name of the faulting kernel.
        kernel: String,
        /// Virtual time the fault is pinned to, ns.
        t_ns: f64,
        /// Human-readable diagnostics (fault kind + site).
        desc: String,
        /// Offending instruction index, when attributable.
        pc: Option<u32>,
        /// Faulting block coordinates, when attributable.
        block: Option<[u32; 3]>,
        /// Faulting thread coordinates, when attributable.
        thread: Option<[u32; 3]>,
        /// Compute unit the faulting block was scheduled on (round-robin
        /// distribution), `0` for unsited faults.
        cu: u32,
        /// Stream the faulting launch ran on (0 = default stream).
        stream: u32,
    },
}

/// Build the trace event for one device fault.
fn fault_event(
    kernel: &str,
    t_ns: f64,
    fault: &DeviceFault,
    grid: Dim3,
    cus: u32,
    stream: u32,
) -> SessionEvent {
    SessionEvent::Fault {
        kernel: kernel.to_string(),
        t_ns,
        desc: fault.to_string(),
        pc: fault.site.map(|s| s.pc),
        block: fault.site.map(|s| s.block),
        thread: fault.site.map(|s| s.thread),
        cu: fault
            .linear_block(grid.x, grid.y)
            .map_or(0, |b| (b % cus.max(1) as u64) as u32),
        stream,
    }
}

/// Whether `GPUCMP_MEMCHECK` asks for the memcheck sanitizer.
fn memcheck_env() -> bool {
    std::env::var("GPUCMP_MEMCHECK")
        .map(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false")
        })
        .unwrap_or(false)
}

/// One device context: memory, loaded kernels, and the virtual clock.
#[derive(Debug)]
pub struct Session {
    /// The simulated device.
    pub device: DeviceSpec,
    /// Device global memory.
    pub gmem: GlobalMemory,
    kernels: Vec<LoadedKernel>,
    now_ns: f64,
    launches: u64,
    kernel_ns_total: f64,
    exec: ExecOptions,
    profile_total: ExecProfile,
    trace: Option<Vec<SessionEvent>>,
    /// Display of the device fault that poisoned the context, if any.
    fault: Option<String>,
    memcheck: bool,
    inject: Option<FaultPlan>,
    /// Per-engine device timeline (persisted across sync points).
    timeline: TimelineState,
    /// Enqueued ops not yet committed to the timeline.
    pending: Vec<PendingOp>,
    /// Stream table; index = stream id, entry 0 is the default stream.
    streams: Vec<StreamState>,
    /// Staged d2h payloads keyed by the enqueuing event.
    readbacks: BTreeMap<(u32, u64), Vec<u8>>,
    /// Pre-decoded dispatch IR by kernel content hash: each distinct kernel
    /// is decoded at most once per context generation, however many times
    /// it is rebuilt or launched. [`Session::reset`] evicts the cache
    /// wholesale: a reset draws a hard line (as `cudaDeviceReset` does), so
    /// a poisoned-then-recycled session starts from nothing — no decoded
    /// code outlives the context that built it, and a pooled server slot
    /// cannot accumulate kernels across the tenants it serves.
    code_cache: HashMap<u64, Arc<DecodedKernel>>,
    /// Number of kernel decodes performed (cache misses) — observability
    /// for tests and reports. Cumulative across resets.
    decode_count: u64,
    /// Number of times [`Session::reset`] ran — lifecycle accounting for
    /// pooled-slot recycling.
    resets: u64,
    /// Hard per-launch instruction-budget ceiling. When set, every launch
    /// runs with `min(cfg.inst_budget, cap)` — the enforcement point for a
    /// server's per-tenant instruction quota: a runaway kernel trips the
    /// simulator watchdog instead of monopolising the host.
    inst_budget_cap: Option<u64>,
}

impl Session {
    /// Create a session on `device` with the default memory arena.
    ///
    /// The memcheck sanitizer starts on if the `GPUCMP_MEMCHECK`
    /// environment variable is set to anything but `0`/`false`, and the
    /// execution tier comes from `GPUCMP_SIM_TIER` (default: fused).
    pub fn new(device: DeviceSpec) -> Self {
        Session::with_arena(device, DEFAULT_ARENA_BYTES)
    }

    /// [`Session::new`] with an explicit memory-arena ceiling: the arena
    /// is `min(device capacity, arena_bytes)` and is preallocated up
    /// front — the sizing knob for servers that pool many sessions and
    /// want each slot's arena paid for once, at pool-build time, never
    /// per request. [`Session::reset`] keeps the configured size.
    pub fn with_arena(device: DeviceSpec, arena_bytes: u64) -> Self {
        let cap = (device.mem_capacity_mib as u64 * 1024 * 1024).min(arena_bytes);
        Session {
            device,
            gmem: GlobalMemory::new(cap),
            kernels: Vec::new(),
            now_ns: 0.0,
            launches: 0,
            kernel_ns_total: 0.0,
            exec: ExecOptions::default().tier(ExecTier::from_env()),
            profile_total: ExecProfile::default(),
            trace: None,
            fault: None,
            memcheck: memcheck_env(),
            inject: None,
            timeline: TimelineState::new(),
            pending: Vec::new(),
            streams: vec![StreamState::default()],
            readbacks: BTreeMap::new(),
            code_cache: HashMap::new(),
            decode_count: 0,
            resets: 0,
            inst_budget_cap: None,
        }
    }

    /// The fault that poisoned this context, if any (CUDA-style sticky
    /// error semantics: once a kernel faults, every subsequent launch,
    /// transfer, or allocation fails with [`RtError::ContextLost`] until
    /// [`Session::reset`]).
    pub fn fault(&self) -> Option<&str> {
        self.fault.as_deref()
    }

    /// Error out if the context is poisoned.
    fn check_live(&self) -> Result<(), RtError> {
        match &self.fault {
            Some(origin) => Err(RtError::ContextLost {
                origin: origin.clone(),
            }),
            None => Ok(()),
        }
    }

    /// Mark the context as lost to `origin` (a device-fault description).
    pub(crate) fn poison(&mut self, origin: String) {
        // first fault wins, like the CUDA sticky error
        self.fault.get_or_insert(origin);
    }

    /// Reset the context, as `cudaDeviceReset` would: the sticky fault is
    /// cleared, device memory is wiped, loaded kernels, streams and the
    /// virtual clock are discarded. Existing [`KernelHandle`]s, [`DevPtr`]s,
    /// [`Stream`]s and [`Event`]s are invalidated. Host-side knobs (exec
    /// options, memcheck, tracing, fault plan, instruction-budget cap)
    /// survive; the trace buffer restarts empty.
    ///
    /// Enqueued stream work that was never committed to the timeline (for
    /// example because a fault poisoned the context before the next
    /// synchronisation point) is *cancelled*, and the returned
    /// [`ResetReport`] says exactly what was lost — ops per stream plus any
    /// completed-but-untaken readbacks — so callers can tell a clean reset
    /// from one that discarded in-flight work.
    ///
    /// The pre-decoded code cache is evicted with everything else
    /// (`evicted_kernels` in the report): a reset returns the session to
    /// its just-created state so a recycled server slot carries nothing —
    /// not even decoded code — from one tenant to the next. Rebuilding a
    /// kernel after a reset therefore decodes it again
    /// ([`Session::decode_count`] keeps counting cumulatively).
    pub fn reset(&mut self) -> ResetReport {
        let mut cancelled_by_stream: Vec<(u32, usize)> = Vec::new();
        for p in &self.pending {
            match cancelled_by_stream.binary_search_by_key(&p.op.stream, |e| e.0) {
                Ok(i) => cancelled_by_stream[i].1 += 1,
                Err(i) => cancelled_by_stream.insert(i, (p.op.stream, 1)),
            }
        }
        let report = ResetReport {
            cancelled_ops: self.pending.len(),
            cancelled_by_stream,
            dropped_readbacks: self.readbacks.len(),
            evicted_kernels: self.code_cache.len(),
            fault: self.fault.clone(),
        };
        let cap = self.gmem.capacity();
        self.gmem = GlobalMemory::new(cap);
        self.kernels.clear();
        self.now_ns = 0.0;
        self.launches = 0;
        self.kernel_ns_total = 0.0;
        self.profile_total = ExecProfile::default();
        if let Some(t) = &mut self.trace {
            t.clear();
        }
        self.fault = None;
        self.timeline = TimelineState::new();
        self.pending.clear();
        self.streams = vec![StreamState::default()];
        self.readbacks.clear();
        self.code_cache.clear();
        self.resets += 1;
        report
    }

    /// Number of times this session has been reset — recycle accounting
    /// for pooled server slots.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Set (or clear) the hard per-launch instruction-budget ceiling.
    /// While set, every launch runs with
    /// `min(LaunchConfig::inst_budget, cap)`, so a kernel exceeding the
    /// cap trips the simulator watchdog — a genuine sticky device fault
    /// that poisons only this session. This is how a multi-tenant server
    /// turns a tenant's instruction quota into an enforced watchdog.
    pub fn set_inst_budget_cap(&mut self, cap: Option<u64>) {
        self.inst_budget_cap = cap;
    }

    /// The per-launch instruction-budget ceiling, if any.
    pub fn inst_budget_cap(&self) -> Option<u64> {
        self.inst_budget_cap
    }

    /// Whether the memcheck sanitizer is on for subsequent launches.
    pub fn memcheck(&self) -> bool {
        self.memcheck
    }

    /// Turn the memcheck sanitizer on or off. While on, memory-access
    /// faults are recorded per launch ([`gpucmp_sim::LaunchReport::faults`],
    /// plus [`SessionEvent::Fault`] when tracing) instead of aborting.
    pub fn set_memcheck(&mut self, on: bool) {
        self.memcheck = on;
    }

    /// Attach (or clear) a deterministic fault-injection plan.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.inject = plan;
    }

    /// The attached fault-injection plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.inject.as_ref()
    }

    /// Turn session tracing on or off. While on, every launch and PCIe
    /// transfer is recorded as a [`SessionEvent`] for chrome-trace export.
    /// Turning tracing off discards any recorded events.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = if on { Some(Vec::new()) } else { None };
    }

    /// Whether session tracing is currently on.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Events recorded so far (empty unless tracing is on).
    pub fn trace_events(&self) -> &[SessionEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Record an event if tracing is on.
    pub(crate) fn record(&mut self, e: SessionEvent) {
        if let Some(t) = &mut self.trace {
            t.push(e);
        }
    }

    /// How launches are simulated (host thread count). Purely a host-side
    /// knob: reports are bit-identical for every setting.
    pub fn exec_options(&self) -> ExecOptions {
        self.exec
    }

    /// Set the simulation options for subsequent launches.
    pub fn set_exec_options(&mut self, opts: ExecOptions) {
        self.exec = opts;
    }

    /// Current virtual time in ns.
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// Advance the host clock to `t_ns` if it is ahead of now. The clock is
    /// monotonic by construction: all advancement happens here, from
    /// committed timeline ops, so virtual time can never go backwards or
    /// skew between streams.
    fn clock_to(&mut self, t_ns: f64) {
        if t_ns > self.now_ns {
            self.now_ns = t_ns;
        }
    }

    /// Create a new stream. Work on distinct streams may overlap on the
    /// virtual timeline wherever it occupies distinct device engines.
    pub fn create_stream(&mut self) -> Stream {
        self.streams.push(StreamState::default());
        Stream((self.streams.len() - 1) as u32)
    }

    /// Number of streams in the session (including the default stream).
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Enqueued ops not yet committed to the timeline.
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }

    /// The device fault raised by a launch enqueued on `stream`, if any —
    /// the per-stream face of the sticky context poison: the whole context
    /// is lost (CUDA semantics), but this says *which stream* carried the
    /// faulting launch.
    pub fn stream_error(&self, stream: Stream) -> Option<&str> {
        self.streams
            .get(stream.id() as usize)
            .and_then(|s| s.error.as_deref())
    }

    fn stream_state_mut(&mut self, stream: Stream) -> Result<&mut StreamState, RtError> {
        self.streams
            .get_mut(stream.id() as usize)
            .ok_or(RtError::BadStream)
    }

    /// Enqueue one op on `stream`: assign its per-stream sequence number,
    /// absorb any recorded cross-stream waits, and defer its timing.
    fn enqueue_op(
        &mut self,
        stream: Stream,
        resource: TimelineResource,
        dur_ns: f64,
        payload: PendingPayload,
    ) -> Result<Event, RtError> {
        let ready_ns = self.now_ns;
        let st = self.stream_state_mut(stream)?;
        let seq = st.next_seq;
        st.next_seq += 1;
        let deps = std::mem::take(&mut st.pending_deps);
        self.pending.push(PendingOp {
            op: TimelineOp {
                stream: stream.id(),
                seq,
                resource,
                dur_ns,
                ready_ns,
                deps,
            },
            payload,
        });
        Ok(Event::new(stream.id(), seq))
    }

    /// Make all *future* work enqueued on `stream` wait until the op
    /// recorded by `event` has completed on the timeline
    /// (`cudaStreamWaitEvent` semantics: ordering is transitive through
    /// in-stream program order, so only the next op carries the edge).
    pub fn stream_wait_event(&mut self, stream: Stream, event: Event) -> Result<(), RtError> {
        let src = self
            .streams
            .get(event.stream_id() as usize)
            .ok_or(RtError::BadEvent("unknown stream"))?;
        if event.seq() >= src.next_seq {
            return Err(RtError::BadEvent("op was never enqueued"));
        }
        self.stream_state_mut(stream)?
            .pending_deps
            .push(event.key());
        Ok(())
    }

    /// Commit every pending op to the timeline: the deterministic scheduler
    /// places them per engine, and the placements become trace events. The
    /// host clock does not move — only synchronisation advances it.
    fn commit_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        let ops: Vec<TimelineOp> = pending.iter().map(|p| p.op.clone()).collect();
        let mut payloads: BTreeMap<(u32, u64), PendingPayload> = pending
            .into_iter()
            .map(|p| ((p.op.stream, p.op.seq), p.payload))
            .collect();
        for placed in self.timeline.schedule(&ops) {
            let payload = payloads
                .remove(&(placed.stream, placed.seq))
                .expect("every scheduled op has a payload");
            if self.trace.is_none() {
                continue;
            }
            match payload {
                PendingPayload::Transfer { dir, bytes } => {
                    self.record(SessionEvent::Transfer {
                        dir,
                        start_ns: placed.start_ns,
                        dur_ns: placed.end_ns - placed.start_ns,
                        bytes,
                        stream: placed.stream,
                    });
                }
                PendingPayload::Launch {
                    kernel,
                    overhead_ns,
                    kernel_ns,
                    grid,
                    block,
                    stats,
                    timing,
                    faults,
                    cus,
                } => {
                    // Memcheck records pin to kernel start, before the
                    // launch slice itself (matching the synchronous order).
                    let t = placed.start_ns + overhead_ns;
                    for f in &faults {
                        let ev = fault_event(&kernel, t, f, grid, cus, placed.stream);
                        self.record(ev);
                    }
                    self.record(SessionEvent::Launch {
                        kernel,
                        start_ns: placed.start_ns,
                        overhead_ns,
                        kernel_ns,
                        grid,
                        block,
                        stats: *stats,
                        timing,
                        stream: placed.stream,
                    });
                }
            }
        }
    }

    /// Block until the op recorded by `event` has completed: commits
    /// pending work to the timeline and advances the host clock to the
    /// op's completion time. Returns that completion time.
    pub fn event_synchronize(&mut self, event: Event) -> Result<f64, RtError> {
        self.check_live()?;
        self.commit_pending();
        let end = self
            .timeline
            .op_end_ns(event.stream_id(), event.seq())
            .ok_or(RtError::BadEvent("op was never enqueued"))?;
        self.clock_to(end);
        Ok(end)
    }

    /// Block until everything enqueued on `stream` has completed. Returns
    /// the stream's completion time.
    pub fn stream_synchronize(&mut self, stream: Stream) -> Result<f64, RtError> {
        self.check_live()?;
        if stream.id() as usize >= self.streams.len() {
            return Err(RtError::BadStream);
        }
        self.commit_pending();
        let end = self.timeline.stream_tail_ns(stream.id());
        self.clock_to(end);
        Ok(self.now_ns)
    }

    /// Block until every stream is idle (`cudaDeviceSynchronize`). Returns
    /// the device-wide completion time.
    pub fn device_synchronize(&mut self) -> Result<f64, RtError> {
        self.check_live()?;
        self.commit_pending();
        let end = self.timeline.horizon_ns();
        self.clock_to(end);
        Ok(self.now_ns)
    }

    /// Take the bytes staged by an enqueued d2h. Synchronises on `event`
    /// first, so the virtual clock covers the transfer. Each readback can
    /// be taken once; a non-d2h event is [`RtError::BadEvent`].
    pub fn take_readback(&mut self, event: Event) -> Result<Vec<u8>, RtError> {
        self.event_synchronize(event)?;
        self.readbacks
            .remove(&event.key())
            .ok_or(RtError::BadEvent("no readback staged for this event"))
    }

    pub(crate) fn stage_readback(&mut self, event: Event, data: Vec<u8>) {
        self.readbacks.insert(event.key(), data);
    }

    pub(crate) fn set_stream_error(&mut self, stream: Stream, desc: String) {
        if let Some(st) = self.streams.get_mut(stream.id() as usize) {
            st.error.get_or_insert(desc);
        }
    }

    /// Number of kernel launches so far.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Total in-kernel virtual time (excluding launch overhead).
    pub fn kernel_ns_total(&self) -> f64 {
        self.kernel_ns_total
    }

    /// Host-side simulator profiling summed over every launch so far:
    /// blocks simulated, wall-clock execution/merge time, overlay traffic.
    pub fn profile_total(&self) -> ExecProfile {
        self.profile_total
    }

    /// Kernel decodes performed so far (code-cache misses), cumulative
    /// across resets. On the decoded and fused tiers this stays at one per
    /// *distinct* kernel per context generation however many times it is
    /// rebuilt or launched; the interp tier never decodes.
    pub fn decode_count(&self) -> u64 {
        self.decode_count
    }

    /// Distinct kernels currently held by the pre-decoded code cache.
    pub fn code_cache_len(&self) -> usize {
        self.code_cache.len()
    }

    /// Look a loaded kernel up.
    pub fn kernel(&self, h: KernelHandle) -> Result<&LoadedKernel, RtError> {
        self.kernels.get(h.0).ok_or(RtError::BadHandle)
    }

    fn load(&mut self, k: LoadedKernel) -> KernelHandle {
        self.kernels.push(k);
        KernelHandle(self.kernels.len() - 1)
    }
}

/// Outcome of one launch.
#[derive(Clone, Debug)]
pub struct LaunchOutcome {
    /// Simulator report (exact stats + modelled kernel time).
    pub report: LaunchReport,
    /// API-side launch overhead that was added to the clock, ns.
    pub overhead_ns: f64,
}

impl LaunchOutcome {
    /// Host-side simulator profiling for this launch: blocks simulated,
    /// worker threads used, wall-clock execution and merge time.
    pub fn profile(&self) -> &ExecProfile {
        &self.report.profile
    }
}

/// The host-API surface shared by the CUDA-flavoured and OpenCL-flavoured
/// runtimes. Benchmarks are written against this trait so the *same host
/// logic* drives both programming models — the paper's "same implementation"
/// requirement (fair-comparison step 3).
pub trait Gpu {
    /// Which programming model this runtime exposes.
    fn api(&self) -> Api;
    /// The underlying session.
    fn session(&self) -> &Session;
    /// The underlying session, mutably.
    fn session_mut(&mut self) -> &mut Session;
    /// Fixed API-side kernel-submit overhead in ns (the paper's
    /// Section IV-B-4 kernel-launch-time difference).
    fn submit_overhead_ns(&self) -> f64;
    /// API-specific launch validation (the OpenCL runtime enforces device
    /// resource limits and returns `CL_*` errors; CUDA launches on its own
    /// vendor's hardware and only hits the simulator's checks).
    fn validate_launch(&self, kernel: &LoadedKernel, cfg: &LaunchConfig) -> Result<(), RtError>;

    /// The device specification.
    fn device(&self) -> &DeviceSpec {
        &self.session().device
    }

    /// Current virtual time in ns.
    fn now_ns(&self) -> f64 {
        self.session().now_ns()
    }

    /// Allocate device memory. Fails with [`RtError::OutOfMemory`] when
    /// the arena is exhausted and [`RtError::ContextLost`] on a poisoned
    /// context.
    fn malloc(&mut self, bytes: u64) -> Result<DevPtr, RtError> {
        self.session().check_live()?;
        let s = self.session_mut();
        if let Some(nth) = s.inject.as_mut().and_then(|p| p.on_malloc()) {
            return Err(RtError::Injected { op: "malloc", nth });
        }
        Ok(s.gmem.alloc(bytes)?)
    }

    /// Asynchronous host-to-device transfer on `stream`. The bytes move
    /// eagerly (enqueue order within a stream *is* execution order); the
    /// transfer's time on the H2D DMA engine is committed at the next
    /// synchronisation point. The transfer must fit the destination
    /// allocation: writing past its end is [`RtError::TransferSize`], not
    /// silent corruption of a neighbour.
    fn enqueue_h2d(&mut self, stream: Stream, ptr: DevPtr, data: &[u8]) -> Result<Event, RtError> {
        self.session().check_live()?;
        let s = self.session_mut();
        if let Some((start, bytes)) = s.gmem.alloc_containing(ptr.0) {
            let available = start + bytes - ptr.0;
            if data.len() as u64 > available {
                return Err(RtError::TransferSize {
                    op: "h2d",
                    requested: data.len() as u64,
                    available,
                });
            }
        }
        let action = s
            .inject
            .as_mut()
            .map_or(TransferAction::Pass, |p| p.on_h2d());
        match action {
            TransferAction::Fail(nth) => return Err(RtError::Injected { op: "h2d", nth }),
            TransferAction::Corrupt if !data.is_empty() => {
                let mut corrupted = data.to_vec();
                corrupted[data.len() / 2] ^= 0x01;
                s.gmem.copy_in(ptr, &corrupted)?;
            }
            _ => s.gmem.copy_in(ptr, data)?,
        }
        let dur = MEMCPY_LATENCY_NS + data.len() as f64 / PCIE_GBS;
        s.enqueue_op(
            stream,
            TimelineResource::H2dEngine,
            dur,
            PendingPayload::Transfer {
                dir: TransferDir::H2D,
                bytes: data.len() as u64,
            },
        )
    }

    /// Host-to-device transfer of raw bytes — sugar over the default
    /// stream: enqueue, then synchronise on the transfer's event, which
    /// reproduces the fully serial timeline exactly.
    fn h2d(&mut self, ptr: DevPtr, data: &[u8]) -> Result<(), RtError> {
        let ev = self.enqueue_h2d(Stream::DEFAULT, ptr, data)?;
        self.session_mut().event_synchronize(ev)?;
        Ok(())
    }

    /// Asynchronous device-to-host transfer of `bytes` bytes on `stream`.
    /// The bytes are staged eagerly; [`Gpu::take_readback`] (or the typed
    /// [`GpuExt::take_readback_t`]) synchronises on the returned event and
    /// hands them out. The requested length must fit the source allocation
    /// (see [`Gpu::enqueue_h2d`]).
    fn enqueue_d2h(&mut self, stream: Stream, ptr: DevPtr, bytes: u64) -> Result<Event, RtError> {
        self.session().check_live()?;
        let s = self.session_mut();
        if let Some((start, alloc_bytes)) = s.gmem.alloc_containing(ptr.0) {
            let available = start + alloc_bytes - ptr.0;
            if bytes > available {
                return Err(RtError::TransferSize {
                    op: "d2h",
                    requested: bytes,
                    available,
                });
            }
        }
        let mut data = vec![0u8; bytes as usize];
        s.gmem.copy_out(ptr, &mut data)?;
        let dur = MEMCPY_LATENCY_NS + bytes as f64 / PCIE_GBS;
        let ev = s.enqueue_op(
            stream,
            TimelineResource::D2hEngine,
            dur,
            PendingPayload::Transfer {
                dir: TransferDir::D2H,
                bytes,
            },
        )?;
        s.stage_readback(ev, data);
        Ok(ev)
    }

    /// Device-to-host transfer of raw bytes — sugar over the default
    /// stream (enqueue + synchronise + take).
    fn d2h(&mut self, ptr: DevPtr, data: &mut [u8]) -> Result<(), RtError> {
        let ev = self.enqueue_d2h(Stream::DEFAULT, ptr, data.len() as u64)?;
        let staged = self.session_mut().take_readback(ev)?;
        data.copy_from_slice(&staged);
        Ok(())
    }

    /// Create a new stream (see [`Session::create_stream`]).
    fn create_stream(&mut self) -> Stream {
        self.session_mut().create_stream()
    }

    /// Make future work on `stream` wait for `event`
    /// (see [`Session::stream_wait_event`]).
    fn stream_wait_event(&mut self, stream: Stream, event: Event) -> Result<(), RtError> {
        self.session_mut().stream_wait_event(stream, event)
    }

    /// Wait until the op recorded by `event` completes; returns its virtual
    /// completion time (see [`Session::event_synchronize`]).
    fn event_synchronize(&mut self, event: Event) -> Result<f64, RtError> {
        self.session_mut().event_synchronize(event)
    }

    /// Wait until everything on `stream` completes
    /// (see [`Session::stream_synchronize`]).
    fn stream_synchronize(&mut self, stream: Stream) -> Result<f64, RtError> {
        self.session_mut().stream_synchronize(stream)
    }

    /// Wait until every stream is idle
    /// (see [`Session::device_synchronize`]).
    fn device_synchronize(&mut self) -> Result<f64, RtError> {
        self.session_mut().device_synchronize()
    }

    /// Take the bytes staged by an enqueued d2h
    /// (see [`Session::take_readback`]).
    fn take_readback(&mut self, event: Event) -> Result<Vec<u8>, RtError> {
        self.session_mut().take_readback(event)
    }

    /// The device fault raised on `stream`, if any
    /// (see [`Session::stream_error`]).
    fn stream_error(&self, stream: Stream) -> Option<&str> {
        self.session().stream_error(stream)
    }

    /// The sticky device fault poisoning this context, if any.
    fn fault(&self) -> Option<&str> {
        self.session().fault()
    }

    /// Reset the context after a device fault; cancels pending stream work
    /// and reports what was lost (see [`Session::reset`]).
    fn reset(&mut self) -> ResetReport {
        self.session_mut().reset()
    }

    /// Turn the memcheck sanitizer on or off for subsequent launches
    /// (see [`Session::set_memcheck`]).
    fn set_memcheck(&mut self, on: bool) {
        self.session_mut().set_memcheck(on);
    }

    /// Attach (or clear) a deterministic fault-injection plan
    /// (see [`crate::inject::FaultPlan`]).
    fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.session_mut().set_fault_plan(plan);
    }

    /// How launches on this runtime are simulated (host thread count).
    fn exec_options(&self) -> ExecOptions {
        self.session().exec_options()
    }

    /// Set the simulation options for subsequent launches. Host-side only:
    /// reports stay bit-identical for every setting.
    fn set_exec_options(&mut self, opts: ExecOptions) {
        self.session_mut().set_exec_options(opts);
    }

    /// Turn session tracing on or off (see [`Session::set_tracing`]).
    fn set_tracing(&mut self, on: bool) {
        self.session_mut().set_tracing(on);
    }

    /// Events recorded since tracing was turned on.
    fn trace_events(&self) -> &[SessionEvent] {
        self.session().trace_events()
    }

    /// Deprecated alias for [`GpuExt::h2d_t`].
    #[deprecated(since = "0.2.0", note = "use the generic `h2d_t`")]
    fn h2d_f32(&mut self, ptr: DevPtr, data: &[f32]) -> Result<(), RtError> {
        self.h2d_t(ptr, data)
    }

    /// Deprecated alias for [`GpuExt::d2h_t`].
    #[deprecated(since = "0.2.0", note = "use the generic `d2h_t`")]
    fn d2h_f32(&mut self, ptr: DevPtr, len: usize) -> Result<Vec<f32>, RtError> {
        self.d2h_t(ptr, len)
    }

    /// Deprecated alias for [`GpuExt::h2d_t`].
    #[deprecated(since = "0.2.0", note = "use the generic `h2d_t`")]
    fn h2d_u32(&mut self, ptr: DevPtr, data: &[u32]) -> Result<(), RtError> {
        self.h2d_t(ptr, data)
    }

    /// Deprecated alias for [`GpuExt::d2h_t`].
    #[deprecated(since = "0.2.0", note = "use the generic `d2h_t`")]
    fn d2h_u32(&mut self, ptr: DevPtr, len: usize) -> Result<Vec<u32>, RtError> {
        self.d2h_t(ptr, len)
    }

    /// Deprecated alias for [`GpuExt::h2d_t`].
    #[deprecated(since = "0.2.0", note = "use the generic `h2d_t`")]
    fn h2d_i32(&mut self, ptr: DevPtr, data: &[i32]) -> Result<(), RtError> {
        self.h2d_t(ptr, data)
    }

    /// Deprecated alias for [`GpuExt::d2h_t`].
    #[deprecated(since = "0.2.0", note = "use the generic `d2h_t`")]
    fn d2h_i32(&mut self, ptr: DevPtr, len: usize) -> Result<Vec<i32>, RtError> {
        self.d2h_t(ptr, len)
    }

    /// Build a kernel through this API's front-end and load it.
    fn build(&mut self, def: &KernelDef) -> Result<KernelHandle, RtError> {
        let style = self.api().style();
        let cap = self.device().max_regs_per_thread;
        let compiled =
            compile_with_style(def, &style, cap).map_err(|e| RtError::Compile(e.to_string()))?;
        let resolved = compiled.exec.resolve().map_err(RtError::Compile)?;
        let mut const_bank = def.const_data.clone();
        // pad to 16 bytes like a real constant bank image
        const_bank.resize(const_bank.len().next_multiple_of(16), 0);
        let code_hash = kernel_hash(&resolved.kernel);
        let loaded = LoadedKernel {
            name: def.name.clone(),
            resolved: Arc::new(resolved),
            const_bank: Arc::new(const_bank),
            ptx_stats: compiled.ptx_stats,
            spilled: compiled.ptxas.spilled,
            code_hash,
        };
        Ok(self.session_mut().load(loaded))
    }

    /// Launch a kernel asynchronously on `stream`. The simulator runs
    /// eagerly — the returned [`LaunchOutcome`] carries the exact report,
    /// bit-identical to the synchronous path — but the launch's time on the
    /// compute engine (API submit overhead + modelled kernel duration) is
    /// committed to the timeline at the next synchronisation point, where
    /// it may overlap transfers on other streams.
    ///
    /// A device fault surfaces immediately as [`RtError::DeviceFault`],
    /// poisons the context (CUDA sticky semantics) and is recorded as the
    /// stream's error ([`Gpu::stream_error`]).
    fn enqueue_launch_config(
        &mut self,
        stream: Stream,
        h: KernelHandle,
        cfg: &LaunchConfig,
    ) -> Result<(Event, LaunchOutcome), RtError> {
        self.session().check_live()?;
        let overhead = self.submit_overhead_ns() + self.device().hw_launch_ns;
        {
            let kernel = self.session().kernel(h)?;
            self.validate_launch(kernel, cfg)?;
        }
        if stream.id() as usize >= self.session().stream_count() {
            return Err(RtError::BadStream);
        }
        let s = self.session_mut();
        let action = s
            .inject
            .as_mut()
            .map_or(LaunchAction::Pass, |p| p.on_launch());
        if let LaunchAction::Fail(nth) = action {
            return Err(RtError::Injected { op: "launch", nth });
        }
        // Effective instruction budget: an injected Starve overrides the
        // config, and the session's quota cap clamps whatever remains.
        let mut effective = cfg.inst_budget;
        if let LaunchAction::Starve(budget) = action {
            effective = budget;
        }
        if let Some(cap) = s.inst_budget_cap {
            effective = effective.min(cap);
        }
        let clamped;
        let cfg = if effective != cfg.inst_budget {
            let mut c = cfg.clone();
            c.inst_budget = effective;
            clamped = c;
            &clamped
        } else {
            cfg
        };
        // cheap Arc clones decouple the kernel from the session borrow
        let kernel = Arc::clone(&s.kernels[h.0].resolved);
        let const_bank = Arc::clone(&s.kernels[h.0].const_bank);
        let name = s.kernels[h.0].name.clone();
        let opts = s.exec.memcheck(s.memcheck);
        // Decoded tiers launch through the session code cache: one decode
        // per distinct kernel (by content hash) per context generation.
        let code: Option<Arc<DecodedKernel>> = if opts.tier == ExecTier::Interp {
            None
        } else {
            let hash = s.kernels[h.0].code_hash;
            Some(match s.code_cache.get(&hash) {
                Some(c) => Arc::clone(c),
                None => {
                    let c = Arc::new(decode_kernel(&kernel, &s.device));
                    s.decode_count += 1;
                    s.code_cache.insert(hash, Arc::clone(&c));
                    c
                }
            })
        };
        let report = match sim_launch_with_code(
            &s.device,
            &kernel,
            &mut s.gmem,
            &const_bank,
            cfg,
            &opts,
            code.as_deref(),
        ) {
            Ok(r) => r,
            Err(e) => {
                let mut err = RtError::from(e);
                if let RtError::DeviceFault { kernel: k, fault } = &mut err {
                    k.clone_from(&name);
                    let ev = fault_event(
                        &name,
                        s.now_ns(),
                        fault,
                        cfg.grid,
                        s.device.compute_units,
                        stream.id(),
                    );
                    s.record(ev);
                }
                if err.is_sticky() {
                    // CUDA sticky semantics: the context is lost until
                    // reset, and the stream remembers it carried the fault
                    s.poison(err.to_string());
                    s.set_stream_error(stream, err.to_string());
                }
                return Err(err);
            }
        };
        s.launches += 1;
        s.kernel_ns_total += report.timing.total_ns;
        s.profile_total.accumulate(&report.profile);
        // Memcheck-suppressed faults ride in the payload; they are pinned
        // to the scheduled kernel start when the op commits.
        let faults = if s.tracing() && !report.faults.is_empty() {
            report.faults.clone()
        } else {
            Vec::new()
        };
        let ev = s.enqueue_op(
            stream,
            TimelineResource::Compute,
            overhead + report.timing.total_ns,
            PendingPayload::Launch {
                kernel: name,
                overhead_ns: overhead,
                kernel_ns: report.timing.total_ns,
                grid: cfg.grid,
                block: cfg.block,
                stats: Box::new(report.stats.clone()),
                timing: report.timing,
                faults,
                cus: s.device.compute_units,
            },
        )?;
        Ok((
            ev,
            LaunchOutcome {
                report,
                overhead_ns: overhead,
            },
        ))
    }

    /// Launch a kernel synchronously — sugar over the default stream:
    /// enqueue, then synchronise on the launch's event, advancing the
    /// virtual clock by the API overhead plus the modelled kernel duration.
    /// Object-safe core — call sites usually prefer [`GpuExt::launch`],
    /// which also takes builders by value.
    fn launch_config(
        &mut self,
        h: KernelHandle,
        cfg: &LaunchConfig,
    ) -> Result<LaunchOutcome, RtError> {
        let (ev, outcome) = self.enqueue_launch_config(Stream::DEFAULT, h, cfg)?;
        self.session_mut().event_synchronize(ev)?;
        Ok(outcome)
    }
}

/// Generic conveniences over [`Gpu`], blanket-implemented for every
/// runtime *and* for `dyn Gpu` itself, so benchmarks written against
/// `&mut dyn Gpu` get the typed API with static dispatch.
pub trait GpuExt: Gpu {
    /// Launch a kernel from anything convertible to a [`LaunchConfig`]:
    /// an owned config, a `&LaunchConfig`, or a
    /// [`gpucmp_sim::LaunchConfigBuilder`].
    fn launch(
        &mut self,
        h: KernelHandle,
        cfg: impl Into<LaunchConfig>,
    ) -> Result<LaunchOutcome, RtError> {
        let cfg = cfg.into();
        self.launch_config(h, &cfg)
    }

    /// Upload a slice of any [`DeviceScalar`] type.
    fn h2d_t<T: DeviceScalar>(&mut self, ptr: DevPtr, data: &[T]) -> Result<(), RtError> {
        let mut bytes = Vec::with_capacity(data.len() * T::BYTES);
        for v in data {
            v.write_le(&mut bytes);
        }
        self.h2d(ptr, &bytes)
    }

    /// Download `len` elements of any [`DeviceScalar`] type.
    fn d2h_t<T: DeviceScalar>(&mut self, ptr: DevPtr, len: usize) -> Result<Vec<T>, RtError> {
        let mut bytes = vec![0u8; len * T::BYTES];
        self.d2h(ptr, &mut bytes)?;
        Ok(bytes.chunks_exact(T::BYTES).map(T::from_le).collect())
    }

    /// Allocate a typed device buffer of `len` elements.
    fn alloc<T: DeviceScalar>(&mut self, len: usize) -> Result<Buffer<T>, RtError> {
        let ptr = self.malloc((len * T::BYTES) as u64)?;
        Ok(Buffer::from_raw(ptr, len))
    }

    /// Upload into a typed buffer. `data` outgrowing the buffer is
    /// [`RtError::TransferSize`], not a panic.
    fn h2d_buf<T: DeviceScalar>(&mut self, buf: &Buffer<T>, data: &[T]) -> Result<(), RtError> {
        if data.len() > buf.len() {
            return Err(RtError::TransferSize {
                op: "h2d_buf",
                requested: (data.len() * T::BYTES) as u64,
                available: buf.bytes(),
            });
        }
        self.h2d_t(buf.ptr(), data)
    }

    /// Download a typed buffer in full.
    fn d2h_buf<T: DeviceScalar>(&mut self, buf: &Buffer<T>) -> Result<Vec<T>, RtError> {
        self.d2h_t(buf.ptr(), buf.len())
    }

    /// Enqueue a launch on `stream` from anything convertible to a
    /// [`LaunchConfig`] (see [`Gpu::enqueue_launch_config`]).
    fn enqueue_launch(
        &mut self,
        stream: Stream,
        h: KernelHandle,
        cfg: impl Into<LaunchConfig>,
    ) -> Result<(Event, LaunchOutcome), RtError> {
        let cfg = cfg.into();
        self.enqueue_launch_config(stream, h, &cfg)
    }

    /// Enqueue a typed upload on `stream`.
    fn enqueue_h2d_t<T: DeviceScalar>(
        &mut self,
        stream: Stream,
        ptr: DevPtr,
        data: &[T],
    ) -> Result<Event, RtError> {
        let mut bytes = Vec::with_capacity(data.len() * T::BYTES);
        for v in data {
            v.write_le(&mut bytes);
        }
        self.enqueue_h2d(stream, ptr, &bytes)
    }

    /// Enqueue a typed upload into a buffer on `stream`. `data` outgrowing
    /// the buffer is [`RtError::TransferSize`], not a panic.
    fn enqueue_h2d_buf<T: DeviceScalar>(
        &mut self,
        stream: Stream,
        buf: &Buffer<T>,
        data: &[T],
    ) -> Result<Event, RtError> {
        if data.len() > buf.len() {
            return Err(RtError::TransferSize {
                op: "h2d_buf",
                requested: (data.len() * T::BYTES) as u64,
                available: buf.bytes(),
            });
        }
        self.enqueue_h2d_t(stream, buf.ptr(), data)
    }

    /// Enqueue a typed download of `len` elements on `stream`; the data
    /// comes back through [`GpuExt::take_readback_t`].
    fn enqueue_d2h_t<T: DeviceScalar>(
        &mut self,
        stream: Stream,
        ptr: DevPtr,
        len: usize,
    ) -> Result<Event, RtError> {
        self.enqueue_d2h(stream, ptr, (len * T::BYTES) as u64)
    }

    /// Enqueue a full typed-buffer download on `stream`.
    fn enqueue_d2h_buf<T: DeviceScalar>(
        &mut self,
        stream: Stream,
        buf: &Buffer<T>,
    ) -> Result<Event, RtError> {
        self.enqueue_d2h_t::<T>(stream, buf.ptr(), buf.len())
    }

    /// Take a typed readback staged by [`GpuExt::enqueue_d2h_t`] /
    /// [`GpuExt::enqueue_d2h_buf`]; synchronises on `event` first.
    fn take_readback_t<T: DeviceScalar>(&mut self, event: Event) -> Result<Vec<T>, RtError> {
        let bytes = self.take_readback(event)?;
        Ok(bytes.chunks_exact(T::BYTES).map(T::from_le).collect())
    }
}

impl<G: Gpu + ?Sized> GpuExt for G {}
