//! Property tests on the benchmarks' CPU reference algorithms and, for a
//! few cheap kernels, differential device-vs-reference runs at random
//! sizes.

use gpucmp_benchmarks::bfs::Graph;
use gpucmp_benchmarks::common::{Benchmark, Scale};
use gpucmp_benchmarks::dxtc::Dxtc;
use gpucmp_benchmarks::rdxs::Rdxs;
use gpucmp_benchmarks::scan::Scan;
use gpucmp_benchmarks::spmv::Csr;
use gpucmp_runtime::Cuda;
use gpucmp_sim::DeviceSpec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scan_reference_is_an_exclusive_prefix_sum(data in prop::collection::vec(any::<u32>(), 0..500)) {
        let out = Scan::reference(&data);
        prop_assert_eq!(out.len(), data.len());
        let mut acc = 0u32;
        for (i, &v) in data.iter().enumerate() {
            prop_assert_eq!(out[i], acc);
            acc = acc.wrapping_add(v);
        }
    }

    #[test]
    fn radix_reference_equals_std_sort(data in prop::collection::vec(any::<u32>(), 0..500)) {
        let mut want = data.clone();
        want.sort_unstable();
        prop_assert_eq!(Rdxs::reference(&data), want);
    }

    #[test]
    fn bfs_distances_satisfy_edge_relaxation(nodes in 2usize..400, degree in 1usize..6, seed in any::<u64>()) {
        let g = Graph::random(nodes, degree, seed);
        let dist = g.bfs_cpu();
        prop_assert_eq!(dist[0], 0);
        for v in 0..nodes {
            prop_assert!(dist[v] >= 0, "ring keeps the graph connected");
            for e in g.offsets[v]..g.offsets[v + 1] {
                let w = g.edges[e as usize] as usize;
                // triangle property of BFS levels
                prop_assert!(dist[w] <= dist[v] + 1, "edge {v}->{w}");
            }
        }
    }

    #[test]
    fn csr_generator_is_well_formed(rows in 1usize..300, nnz in 1usize..20, seed in any::<u64>()) {
        let m = Csr::random(rows, nnz, seed);
        prop_assert_eq!(m.rows(), rows);
        prop_assert_eq!(*m.row_offsets.last().unwrap() as usize, m.nnz());
        for w in m.row_offsets.windows(2) {
            prop_assert!(w[0] <= w[1], "offsets are monotone");
        }
        for (i, w) in m.row_offsets.windows(2).enumerate() {
            let cols = &m.cols[w[0] as usize..w[1] as usize];
            prop_assert!(!cols.is_empty(), "row {i} has at least one entry");
            for c in cols {
                prop_assert!((*c as usize) < rows);
            }
            prop_assert!(cols.windows(2).all(|p| p[0] < p[1]), "row {i} sorted+deduped");
        }
    }

    #[test]
    fn dxtc_reference_invariants(pixels in prop::collection::vec(0u32..0x0100_0000, 16)) {
        let b = Dxtc { width: 4, height: 4 };
        let out = b.reference(&pixels);
        prop_assert_eq!(out.len(), 2);
        let c0 = out[0] & 0xffff;
        let c1 = out[0] >> 16;
        // endpoints come from the per-channel bounding box: max >= min
        let (r0, g0, b0) = (c0 >> 11, (c0 >> 5) & 63, c0 & 31);
        let (r1, g1, b1) = (c1 >> 11, (c1 >> 5) & 63, c1 & 31);
        prop_assert!(r0 >= r1 && g0 >= g1 && b0 >= b1);
        // a solid-colour block must map every pixel to palette entry 0
        if pixels.iter().all(|&p| p == pixels[0]) {
            prop_assert_eq!(out[1], 0);
        }
    }
}

proptest! {
    // device-backed cases are slower: keep the count low
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn scan_device_matches_reference_at_random_sizes(blocks in 1u32..12) {
        let b = Scan { n: blocks * 512 };
        let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let r = b.run(&mut gpu).unwrap();
        prop_assert!(r.verify.is_pass(), "{:?}", r.verify);
    }

    #[test]
    fn radix_device_sorts_at_random_sizes(blocks in 1u32..8) {
        let b = Rdxs { n: blocks * 256 };
        let mut gpu = Cuda::new(DeviceSpec::gtx280()).unwrap();
        let r = b.run(&mut gpu).unwrap();
        prop_assert!(r.verify.is_pass(), "{:?}", r.verify);
    }

    #[test]
    fn bfs_device_matches_cpu_at_random_shapes(nodes_k in 1usize..5, degree in 1usize..5) {
        let b = gpucmp_benchmarks::bfs::Bfs { nodes: nodes_k * 512, degree, streams: false };
        let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let r = b.run(&mut gpu).unwrap();
        prop_assert!(r.verify.is_pass(), "{:?}", r.verify);
    }

    #[test]
    fn fft_device_matches_reference_at_random_batches(batches in 1u32..6) {
        let b = gpucmp_benchmarks::fft::Fft { batches, inverse: false };
        let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let r = b.run(&mut gpu).unwrap();
        prop_assert!(r.verify.is_pass(), "{:?}", r.verify);
    }
}

#[test]
fn quick_and_paper_scales_agree_functionally() {
    // the scale only changes sizes, never semantics: both verify
    for scale in [Scale::Quick, Scale::Paper] {
        let b = Scan::new(scale);
        let mut gpu = Cuda::new(DeviceSpec::gtx280()).unwrap();
        assert!(b.run(&mut gpu).unwrap().verify.is_pass(), "{scale:?}");
    }
}
