//! # gpucmp-benchmarks — the 16 benchmarks of the paper
//!
//! All benchmarks of the paper's Table II plus the two synthetic peak
//! benchmarks, each authored once in the kernel DSL and runnable through
//! either host API. Per-benchmark module docs explain which paper
//! experiment each one carries; the "unmodified" dialect differences
//! (texture in CUDA MD/SPMV, constant memory in OpenCL Sobel, the FDTD
//! unroll pragmas) key off `gpu.api()` exactly as the paper's sources
//! differ.
//!
//! Every benchmark verifies its device output against a CPU reference;
//! the warp-size-dependent radix sort *intentionally* fails verification
//! on 64-wide wavefront devices (the paper's Table VI "FL").

pub mod bfs;
pub mod common;
pub mod devicemem;
pub mod dxtc;
pub mod fdtd;
pub mod fft;
pub mod maxflops;
pub mod md;
pub mod micro;
pub mod mxm;
pub mod rdxs;
pub mod reduce;
pub mod scan;
pub mod sobel;
pub mod spmv;
pub mod st2d;
pub mod stnw;
pub mod tranp;

pub use common::{Benchmark, Metric, RunOutput, Scale, Verify};

/// The 14 real-world benchmarks of Table II, in the paper's column order,
/// with their paper-default (unmodified) options.
pub fn real_world(scale: Scale) -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(bfs::Bfs::new(scale)),
        Box::new(sobel::Sobel::new(scale)),
        Box::new(tranp::TranP::new(scale)),
        Box::new(reduce::Reduce::new(scale)),
        Box::new(fft::Fft::new(scale)),
        Box::new(md::Md::new(scale)),
        Box::new(spmv::Spmv::new(scale)),
        Box::new(st2d::St2D::new(scale)),
        Box::new(dxtc::Dxtc::new(scale)),
        Box::new(rdxs::Rdxs::new(scale)),
        Box::new(scan::Scan::new(scale)),
        Box::new(stnw::Stnw::new(scale)),
        Box::new(mxm::MxM::new(scale)),
        Box::new(fdtd::Fdtd::new(scale)),
    ]
}

/// The two synthetic peak benchmarks.
pub fn synthetic(scale: Scale) -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(maxflops::MaxFlops::new(scale)),
        Box::new(devicemem::DeviceMemory::new(scale)),
    ]
}

/// The explicit-stream variants of the benchmarks that ship an
/// overlapped-transfer pipeline (BFS, MxM, FDTD). Same workloads and
/// verification as their synchronous rows; only the host-side transfer /
/// compute overlap differs, which is exactly what the campaign's
/// wall-time columns surface.
pub fn streamed_variants(scale: Scale) -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(bfs::Bfs::new(scale).with_streams(true)),
        Box::new(mxm::MxM::new(scale).with_streams(true)),
        Box::new(fdtd::Fdtd::new(scale).with_streams(true)),
    ]
}

/// Micro-workloads promoted from the fuzz corpus (PR 8 follow-up): the
/// atomic-histogram and shared-rotate kernels as timed campaign rows —
/// pure global-atomic throughput and pure shared-memory rotate latency,
/// both exactly verified on every device.
pub fn micro_workloads(scale: Scale) -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(micro::AtomHist::new(scale)),
        Box::new(micro::SharedRot::new(scale)),
    ]
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn sixteen_benchmarks_with_table2_names() {
        let rw = real_world(Scale::Quick);
        let names: Vec<_> = rw.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "BFS", "Sobel", "TranP", "Reduce", "FFT", "MD", "SPMV", "St2D", "DXTC", "RdxS",
                "Scan", "STNW", "MxM", "FDTD"
            ]
        );
        assert_eq!(synthetic(Scale::Quick).len(), 2);
        let streamed: Vec<_> = streamed_variants(Scale::Quick)
            .iter()
            .map(|b| b.name())
            .collect();
        assert_eq!(streamed, vec!["BFS+streams", "MxM+streams", "FDTD+streams"]);
        let micro: Vec<_> = micro_workloads(Scale::Quick)
            .iter()
            .map(|b| b.name())
            .collect();
        assert_eq!(micro, vec!["AtomHist", "SharedRot"]);
    }

    #[test]
    fn metrics_match_table2() {
        use common::Metric::*;
        let rw = real_world(Scale::Quick);
        let metrics: Vec<_> = rw.iter().map(|b| b.metric()).collect();
        assert_eq!(
            metrics,
            vec![
                Seconds,         // BFS
                Seconds,         // Sobel
                GBPerSec,        // TranP
                GBPerSec,        // Reduce
                GFlopsPerSec,    // FFT
                GFlopsPerSec,    // MD
                GFlopsPerSec,    // SPMV
                Seconds,         // St2D
                MPixelsPerSec,   // DXTC
                MElementsPerSec, // RdxS
                MElementsPerSec, // Scan
                MElementsPerSec, // STNW
                GFlopsPerSec,    // MxM
                MPixelsPerSec,   // FDTD (MPoints/s)
            ]
        );
    }
}
