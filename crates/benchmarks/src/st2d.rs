//! St2D — SHOC's two-dimensional nine-point stencil (paper Table II, sec).
//!
//! Ping-pongs between two buffers for a fixed number of time steps; the
//! borders are copied through unchanged, matching SHOC's halo handling.

use crate::common::{check_f32, rand_f32, verdict, Benchmark, Metric, RunOutput, Scale, Window};
use gpucmp_compiler::{ld_global, Builtin, DslKernel, Expr, KernelDef};
use gpucmp_ptx::Ty;
use gpucmp_runtime::{Gpu, GpuExt, RtError};
use gpucmp_sim::{ExecStats, LaunchConfig};

/// Nine-point weights: center, edge (N/S/E/W), diagonal.
pub const W_CENTER: f32 = 0.25;
/// Edge weight.
pub const W_EDGE: f32 = 0.15;
/// Diagonal weight.
pub const W_DIAG: f32 = 0.0375;

/// St2D benchmark.
#[derive(Clone, Debug)]
pub struct St2D {
    /// Grid width (multiple of 16).
    pub width: u32,
    /// Grid height (multiple of 16).
    pub height: u32,
    /// Time steps.
    pub steps: u32,
}

impl St2D {
    /// Construct with the given scale.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Quick => St2D {
                width: 64,
                height: 64,
                steps: 2,
            },
            Scale::Paper => St2D {
                width: 256,
                height: 256,
                steps: 8,
            },
        }
    }

    fn kernel(&self) -> KernelDef {
        let mut k = DslKernel::new("stencil9");
        let input = k.param_ptr("input");
        let output = k.param_ptr("output");
        let w = k.param("w", Ty::S32);
        let h = k.param("h", Ty::S32);
        let x = k.let_(
            Ty::S32,
            Expr::from(Builtin::CtaidX) * Builtin::NtidX + Builtin::TidX,
        );
        let y = k.let_(
            Ty::S32,
            Expr::from(Builtin::CtaidY) * Builtin::NtidY + Builtin::TidY,
        );
        let idx = k.let_(Ty::S32, Expr::from(y) * w.clone() + x);
        let in_x = (Expr::from(x) - 1i32)
            .cast(Ty::U32)
            .lt((w.clone() - 2i32).cast(Ty::U32));
        let in_y = (Expr::from(y) - 1i32)
            .cast(Ty::U32)
            .lt((h.clone() - 2i32).cast(Ty::U32));
        k.if_else(
            in_x,
            |k| {
                k.if_else(
                    in_y,
                    |k| {
                        let at = |dy: i32, dx: i32| -> Expr {
                            ld_global(
                                input.clone(),
                                Expr::from(idx) + Expr::from(dy) * w.clone() + dx,
                                Ty::F32,
                            )
                        };
                        let acc = k.let_(Ty::F32, at(0, 0) * W_CENTER);
                        for (dy, dx, wgt) in [
                            (-1i32, 0i32, W_EDGE),
                            (1, 0, W_EDGE),
                            (0, -1, W_EDGE),
                            (0, 1, W_EDGE),
                            (-1, -1, W_DIAG),
                            (-1, 1, W_DIAG),
                            (1, -1, W_DIAG),
                            (1, 1, W_DIAG),
                        ] {
                            k.assign(acc, Expr::from(acc) + at(dy, dx) * wgt);
                        }
                        k.st_global(output.clone(), idx, Ty::F32, acc);
                    },
                    |k| {
                        k.st_global(
                            output.clone(),
                            idx,
                            Ty::F32,
                            ld_global(input.clone(), idx, Ty::F32),
                        );
                    },
                );
            },
            |k| {
                k.st_global(
                    output.clone(),
                    idx,
                    Ty::F32,
                    ld_global(input.clone(), idx, Ty::F32),
                );
            },
        );
        k.finish()
    }

    /// CPU reference for one time step.
    fn step(&self, src: &[f32], dst: &mut [f32]) {
        let (w, h) = (self.width as usize, self.height as usize);
        dst.copy_from_slice(src);
        for y in 1..h - 1 {
            for x in 1..w - 1 {
                let i = y * w + x;
                let mut acc = src[i] * W_CENTER;
                for (dy, dx, wgt) in [
                    (-1i64, 0i64, W_EDGE),
                    (1, 0, W_EDGE),
                    (0, -1, W_EDGE),
                    (0, 1, W_EDGE),
                    (-1, -1, W_DIAG),
                    (-1, 1, W_DIAG),
                    (1, -1, W_DIAG),
                    (1, 1, W_DIAG),
                ] {
                    acc += src[(i as i64 + dy * w as i64 + dx) as usize] * wgt;
                }
                dst[i] = acc;
            }
        }
    }
}

impl Benchmark for St2D {
    fn name(&self) -> &'static str {
        "St2D"
    }

    fn metric(&self) -> Metric {
        Metric::Seconds
    }

    fn run(&self, gpu: &mut dyn Gpu) -> Result<RunOutput, RtError> {
        let (w, h) = (self.width as usize, self.height as usize);
        let def = self.kernel();
        let kh = gpu.build(&def)?;
        let buf_a = gpu.malloc((w * h * 4) as u64)?;
        let buf_b = gpu.malloc((w * h * 4) as u64)?;
        let data = rand_f32(0x57D2, w * h, 0.0, 1.0);
        gpu.h2d_t(buf_a, &data)?;
        let mut stats = ExecStats::default();
        let win = Window::open(gpu);
        let (mut src, mut dst) = (buf_a, buf_b);
        for _ in 0..self.steps {
            let cfg = LaunchConfig::new((self.width / 16, self.height / 16), (16u32, 16u32))
                .arg_ptr(src)
                .arg_ptr(dst)
                .arg_i32(self.width as i32)
                .arg_i32(self.height as i32);
            let l = gpu.launch(kh, &cfg)?;
            stats.merge(&l.report.stats);
            std::mem::swap(&mut src, &mut dst);
        }
        let (wall_ns, kernel_ns, launches) = win.close(gpu);
        let got = gpu.d2h_t::<f32>(src, w * h)?;
        let mut a = data.clone();
        let mut b = vec![0.0f32; w * h];
        for _ in 0..self.steps {
            self.step(&a, &mut b);
            std::mem::swap(&mut a, &mut b);
        }
        let verify = verdict(check_f32(&got, &a, 1e-3));
        Ok(RunOutput {
            value: wall_ns * 1e-9,
            metric: Metric::Seconds,
            verify,
            kernel_ns,
            wall_ns,
            launches,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_runtime::{Cuda, OpenCl};
    use gpucmp_sim::DeviceSpec;

    #[test]
    fn stencil_verifies_on_both_apis() {
        let b = St2D::new(Scale::Quick);
        let mut cuda = Cuda::new(DeviceSpec::gtx280()).unwrap();
        let rc = b.run(&mut cuda).unwrap();
        assert!(rc.verify.is_pass(), "{:?}", rc.verify);
        assert_eq!(rc.launches, b.steps as u64);
        let mut ocl = OpenCl::create_any(DeviceSpec::gtx480());
        let ro = b.run(&mut ocl).unwrap();
        assert!(ro.verify.is_pass(), "{:?}", ro.verify);
    }

    #[test]
    fn multiple_steps_compound() {
        let one = St2D {
            width: 64,
            height: 64,
            steps: 1,
        };
        let two = St2D {
            width: 64,
            height: 64,
            steps: 2,
        };
        let mut cuda = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let r1 = one.run(&mut cuda).unwrap();
        let mut cuda2 = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let r2 = two.run(&mut cuda2).unwrap();
        assert!(r1.verify.is_pass() && r2.verify.is_pass());
        assert!(r2.value > r1.value); // more steps, more seconds
    }
}
