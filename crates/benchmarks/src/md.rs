//! MD — SHOC's Lennard-Jones molecular dynamics kernel (paper Table II,
//! GFlops/s; the texture-memory ablation of Figs 4-5).
//!
//! Each thread computes the force on one atom from its neighbour list. The
//! neighbour positions are an *irregular read-only* access pattern — the
//! CUDA version fetches them through **texture memory**, whose cache makes
//! the accesses "look more regular" (the paper's words); the OpenCL version
//! reads plain global memory. [`Md::with_texture`] overrides the per-API
//! default to reproduce Fig. 4.

use crate::common::{check_f32, rng, verdict, Benchmark, Metric, RunOutput, Scale, Window};
use gpucmp_compiler::{global_id_x, ld_global, tex1d, Api, DslKernel, Expr, KernelDef, Unroll};
use gpucmp_ptx::Ty;
use gpucmp_runtime::{Gpu, GpuExt, RtError};
use gpucmp_sim::LaunchConfig;
use rand::Rng;

/// Lennard-Jones constants (SHOC's lj1/lj2).
const LJ1: f32 = 1.5;
/// Second Lennard-Jones constant.
const LJ2: f32 = 2.0;
/// Squared cutoff radius — an exact multiple of 1/4096 so that, with the
/// grid-quantised positions below, the `r2 < CUTOFF2` comparison is
/// bit-deterministic regardless of how each front-end fuses the distance
/// computation.
const CUTOFF2: f32 = 0.15625;

/// MD benchmark.
#[derive(Clone, Debug)]
pub struct Md {
    /// Atom count.
    pub n: u32,
    /// Neighbours per atom.
    pub neighbors: u32,
    /// Texture override; `None` = paper default (CUDA yes, OpenCL no).
    pub use_texture: Option<bool>,
}

impl Md {
    /// Construct with the given scale.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Md {
                n: 1024,
                neighbors: 16,
                use_texture: None,
            },
            Scale::Paper => Md {
                n: 8192,
                neighbors: 32,
                use_texture: None,
            },
        }
    }

    /// Override texture use (Fig. 4 ablation).
    pub fn with_texture(mut self, v: bool) -> Self {
        self.use_texture = Some(v);
        self
    }

    fn kernel(&self, use_texture: bool) -> KernelDef {
        let mut k = DslKernel::new(if use_texture { "md_lj_tex" } else { "md_lj" });
        let pos_x = k.param_ptr("pos_x");
        let pos_y = k.param_ptr("pos_y");
        let pos_z = k.param_ptr("pos_z");
        let force_x = k.param_ptr("force_x");
        let force_y = k.param_ptr("force_y");
        let force_z = k.param_ptr("force_z");
        let neigh = k.param_ptr("neigh");
        let n = k.param("n", Ty::S32);
        let nk = k.param("num_neigh", Ty::S32);
        let i = k.let_(Ty::S32, global_id_x());
        k.if_(Expr::from(i).lt(n.clone()), |k| {
            let xi = k.let_(Ty::F32, ld_global(pos_x.clone(), i, Ty::F32));
            let yi = k.let_(Ty::F32, ld_global(pos_y.clone(), i, Ty::F32));
            let zi = k.let_(Ty::F32, ld_global(pos_z.clone(), i, Ty::F32));
            let fx = k.let_(Ty::F32, 0.0f32);
            let fy = k.let_(Ty::F32, 0.0f32);
            let fz = k.let_(Ty::F32, 0.0f32);
            k.for_(0i32, nk, 1, Unroll::None, |k, kk| {
                // column-major neighbour list keeps this load coalesced
                let j = k.let_(
                    Ty::S32,
                    ld_global(neigh.clone(), kk * n.clone() + i, Ty::S32),
                );
                let (xj, yj, zj) = if use_texture {
                    (
                        tex1d(0, j, Ty::F32),
                        tex1d(1, j, Ty::F32),
                        tex1d(2, j, Ty::F32),
                    )
                } else {
                    (
                        ld_global(pos_x.clone(), j, Ty::F32),
                        ld_global(pos_y.clone(), j, Ty::F32),
                        ld_global(pos_z.clone(), j, Ty::F32),
                    )
                };
                let dx = k.let_(Ty::F32, Expr::from(xi) - xj);
                let dy = k.let_(Ty::F32, Expr::from(yi) - yj);
                let dz = k.let_(Ty::F32, Expr::from(zi) - zj);
                let r2 = k.let_(
                    Ty::F32,
                    Expr::from(dx) * dx + Expr::from(dy) * dy + Expr::from(dz) * dz,
                );
                k.if_(Expr::from(r2).lt(CUTOFF2), |k| {
                    let inv = k.let_(Ty::F32, Expr::from(r2).rcp());
                    let r6 = k.let_(Ty::F32, Expr::from(inv) * inv * inv);
                    let f = k.let_(Ty::F32, Expr::from(r6) * (Expr::from(r6) * LJ1 - LJ2) * inv);
                    k.assign(fx, Expr::from(fx) + Expr::from(dx) * f);
                    k.assign(fy, Expr::from(fy) + Expr::from(dy) * f);
                    k.assign(fz, Expr::from(fz) + Expr::from(dz) * f);
                });
            });
            k.st_global(force_x.clone(), i, Ty::F32, fx);
            k.st_global(force_y.clone(), i, Ty::F32, fy);
            k.st_global(force_z.clone(), i, Ty::F32, fz);
        });
        k.finish()
    }

    /// Deterministic inputs: positions in the unit box, neighbour indices
    /// biased to nearby atom indices (locality the texture cache exploits).
    fn inputs(&self) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<i32>) {
        let n = self.n as usize;
        let kcnt = self.neighbors as usize;
        let mut r = rng(0x3D);
        // Positions on a 1/64 grid: squared distances are exact in f32
        // (14 significand bits), so fma-order differences between the two
        // front-ends cannot flip the cutoff branch.
        let quant = |r: &mut rand::rngs::SmallRng| r.gen_range(0..64u32) as f32 / 64.0;
        let px: Vec<f32> = (0..n).map(|_| quant(&mut r)).collect();
        let py: Vec<f32> = (0..n).map(|_| quant(&mut r)).collect();
        let pz: Vec<f32> = (0..n).map(|_| quant(&mut r)).collect();
        // column-major: neigh[k*n + i]
        let mut neigh = vec![0i32; n * kcnt];
        for i in 0..n {
            for kk in 0..kcnt {
                // irregular gather with mild spatial locality (SHOC builds
                // neighbour lists from a spatially sorted atom array)
                let lo = i.saturating_sub(1024);
                let hi = (i + 1024).min(n - 1);
                neigh[kk * n + i] = r.gen_range(lo..=hi) as i32;
            }
        }
        (px, py, pz, neigh)
    }

    /// CPU reference matching the kernel's f32 operation order.
    fn reference(&self, px: &[f32], py: &[f32], pz: &[f32], neigh: &[i32]) -> Vec<f32> {
        let n = self.n as usize;
        let kcnt = self.neighbors as usize;
        let mut out = vec![0.0f32; 3 * n];
        for i in 0..n {
            let (mut fx, mut fy, mut fz) = (0.0f32, 0.0f32, 0.0f32);
            for kk in 0..kcnt {
                let j = neigh[kk * n + i] as usize;
                let dx = px[i] - px[j];
                let dy = py[i] - py[j];
                let dz = pz[i] - pz[j];
                // exact with the quantised positions, any summation order
                let r2 = dx * dx + dy * dy + dz * dz;
                if r2 < CUTOFF2 {
                    let inv = 1.0 / r2;
                    let r6 = inv * inv * inv;
                    let f = (r6 * (r6 * LJ1 - LJ2)) * inv;
                    fx = dx.mul_add(f, fx);
                    fy = dy.mul_add(f, fy);
                    fz = dz.mul_add(f, fz);
                }
            }
            out[i] = fx;
            out[n + i] = fy;
            out[2 * n + i] = fz;
        }
        out
    }
}

impl Benchmark for Md {
    fn name(&self) -> &'static str {
        "MD"
    }

    fn metric(&self) -> Metric {
        Metric::GFlopsPerSec
    }

    fn run(&self, gpu: &mut dyn Gpu) -> Result<RunOutput, RtError> {
        let use_texture = self.use_texture.unwrap_or(gpu.api() == Api::Cuda);
        let n = self.n as usize;
        let def = self.kernel(use_texture);
        let h = gpu.build(&def)?;
        let (px, py, pz, neigh) = self.inputs();
        let d_px = gpu.malloc((n * 4) as u64)?;
        let d_py = gpu.malloc((n * 4) as u64)?;
        let d_pz = gpu.malloc((n * 4) as u64)?;
        let d_fx = gpu.malloc((n * 4) as u64)?;
        let d_fy = gpu.malloc((n * 4) as u64)?;
        let d_fz = gpu.malloc((n * 4) as u64)?;
        let d_ng = gpu.malloc((neigh.len() * 4) as u64)?;
        gpu.h2d_t(d_px, &px)?;
        gpu.h2d_t(d_py, &py)?;
        gpu.h2d_t(d_pz, &pz)?;
        gpu.h2d_t(d_ng, &neigh)?;
        let block = 128u32;
        let mut cfg = LaunchConfig::new((self.n).div_ceil(block), block)
            .arg_ptr(d_px)
            .arg_ptr(d_py)
            .arg_ptr(d_pz)
            .arg_ptr(d_fx)
            .arg_ptr(d_fy)
            .arg_ptr(d_fz)
            .arg_ptr(d_ng)
            .arg_i32(n as i32)
            .arg_i32(self.neighbors as i32);
        if use_texture {
            cfg = cfg
                .bind_texture(d_px, n as u64)
                .bind_texture(d_py, n as u64)
                .bind_texture(d_pz, n as u64);
        }
        let win = Window::open(gpu);
        let launch = gpu.launch(h, &cfg)?;
        let (wall_ns, kernel_ns, launches) = win.close(gpu);
        let got_x = gpu.d2h_t::<f32>(d_fx, n)?;
        let got_y = gpu.d2h_t::<f32>(d_fy, n)?;
        let got_z = gpu.d2h_t::<f32>(d_fz, n)?;
        let want = self.reference(&px, &py, &pz, &neigh);
        let verify = verdict(
            check_f32(&got_x, &want[..n], 1e-3)
                .and_then(|_| check_f32(&got_y, &want[n..2 * n], 1e-3))
                .and_then(|_| check_f32(&got_z, &want[2 * n..], 1e-3)),
        );
        let gflops = launch.report.stats.flops as f64 / kernel_ns;
        Ok(RunOutput {
            value: gflops,
            metric: Metric::GFlopsPerSec,
            verify,
            kernel_ns,
            wall_ns,
            launches,
            stats: launch.report.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_runtime::{Cuda, OpenCl};
    use gpucmp_sim::DeviceSpec;

    #[test]
    fn md_verifies_with_and_without_texture() {
        let mut cuda = Cuda::new(DeviceSpec::gtx280()).unwrap();
        for tex in [true, false] {
            let b = Md::new(Scale::Quick).with_texture(tex);
            let r = b.run(&mut cuda).unwrap();
            assert!(r.verify.is_pass(), "tex={tex}: {:?}", r.verify);
            if tex {
                assert!(r.stats.tex_hits + r.stats.tex_misses > 0);
            } else {
                assert_eq!(r.stats.tex_hits + r.stats.tex_misses, 0);
            }
        }
    }

    #[test]
    fn texture_improves_performance_on_gt200() {
        // Fig. 4: removing texture drops MD to ~88% on GTX280 and ~60% on
        // GTX480.
        let with_t = Md::new(Scale::Paper).with_texture(true);
        let without = Md::new(Scale::Paper).with_texture(false);
        let mut g280 = Cuda::new(DeviceSpec::gtx280()).unwrap();
        let p_with = with_t.run(&mut g280).unwrap().value;
        let p_without = without.run(&mut g280).unwrap().value;
        let f280 = p_without / p_with;
        assert!(
            (0.6..0.95).contains(&f280),
            "GTX280 no-texture fraction {f280}"
        );
        // Fermi drops *more* (paper: 59.6%): without texture its gathers
        // move whole 128-byte L1 lines through the L2.
        let mut g480 = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let q_with = with_t.run(&mut g480).unwrap().value;
        let q_without = without.run(&mut g480).unwrap().value;
        let f480 = q_without / q_with;
        assert!(
            (0.35..0.75).contains(&f480),
            "GTX480 no-texture fraction {f480}"
        );
        assert!(f480 < f280, "Fermi must lose more from texture removal");
    }

    #[test]
    fn opencl_matches_cuda_without_texture() {
        // Fig. 5: after removing texture from the CUDA version the two
        // programming models are equal.
        let b = Md::new(Scale::Paper).with_texture(false);
        let mut cuda = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let pc = b.run(&mut cuda).unwrap().value;
        let mut ocl = OpenCl::create_any(DeviceSpec::gtx480());
        let po = b.run(&mut ocl).unwrap().value;
        let pr = po / pc;
        assert!((0.8..1.2).contains(&pr), "PR = {pr}");
    }
}
