//! Shared benchmark infrastructure: metrics, results, verification and
//! deterministic input generation.

use gpucmp_runtime::RtError;
use gpucmp_sim::ExecStats;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Performance metric unit, per the paper's Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Elapsed seconds (lower is better).
    Seconds,
    /// Gigabytes per second.
    GBPerSec,
    /// GFlops per second.
    GFlopsPerSec,
    /// Megapixels per second.
    MPixelsPerSec,
    /// Millions of elements per second.
    MElementsPerSec,
}

impl Metric {
    /// Display unit.
    pub const fn unit(self) -> &'static str {
        match self {
            Metric::Seconds => "sec",
            Metric::GBPerSec => "GB/sec",
            Metric::GFlopsPerSec => "GFlops/sec",
            Metric::MPixelsPerSec => "MPixels/sec",
            Metric::MElementsPerSec => "MElements/sec",
        }
    }

    /// Whether a larger value means better performance.
    pub const fn higher_is_better(self) -> bool {
        !matches!(self, Metric::Seconds)
    }
}

/// Verification outcome of one run.
#[derive(Clone, Debug, PartialEq)]
pub enum Verify {
    /// Device output matched the CPU reference.
    Pass,
    /// Device output was wrong — the paper's "FL" (e.g. the warp-size-32
    /// radix sort on 64-wide wavefront devices).
    Fail(String),
}

impl Verify {
    /// True when verification passed.
    pub fn is_pass(&self) -> bool {
        matches!(self, Verify::Pass)
    }
}

/// Output of one benchmark run.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Metric value (in the benchmark's [`Metric`] units).
    pub value: f64,
    /// Metric unit.
    pub metric: Metric,
    /// Verification result.
    pub verify: Verify,
    /// Total in-kernel virtual time, ns.
    pub kernel_ns: f64,
    /// Wall (virtual) time of the measured window, ns (includes launch
    /// overheads and any mid-measurement transfers).
    pub wall_ns: f64,
    /// Kernel launches in the measured window.
    pub launches: u64,
    /// Merged execution statistics of the measured window.
    pub stats: ExecStats,
}

impl RunOutput {
    /// Normalised "performance" — the quantity whose ratio defines the
    /// paper's PR metric (Eq. 1). For time-valued metrics this is `1/t`.
    pub fn performance(&self) -> f64 {
        if self.metric.higher_is_better() {
            self.value
        } else {
            1.0 / self.value
        }
    }
}

/// Problem-size scale: `Quick` for unit tests (debug builds), `Paper` for
/// the experiment harness and benches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Small inputs, fast in debug builds.
    Quick,
    /// Paper-like inputs for the harness.
    Paper,
}

/// A benchmark runnable on any [`gpucmp_runtime::Gpu`].
pub trait Benchmark {
    /// Short name as in the paper's Table II.
    fn name(&self) -> &'static str;
    /// Metric unit.
    fn metric(&self) -> Metric;
    /// Run on the given runtime; dialect-specific defaults (texture use,
    /// constant memory, pragmas) key off `gpu.api()` unless overridden.
    fn run(&self, gpu: &mut dyn gpucmp_runtime::Gpu) -> Result<RunOutput, RtError>;
}

/// Deterministic RNG for benchmark inputs.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// `n` uniform f32 values in `[lo, hi)`.
pub fn rand_f32(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(lo..hi)).collect()
}

/// `n` uniform u32 values.
pub fn rand_u32(seed: u64, n: usize) -> Vec<u32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen()).collect()
}

/// Compare two f32 slices with relative tolerance; `Err` describes the
/// first mismatch.
pub fn check_f32(got: &[f32], want: &[f32], rel_tol: f32) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("length {} vs {}", got.len(), want.len()));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let scale = w.abs().max(g.abs()).max(1.0);
        if (g - w).abs() > rel_tol * scale {
            return Err(format!("element {i}: got {g}, want {w}"));
        }
    }
    Ok(())
}

/// Exact comparison of u32 slices.
pub fn check_u32(got: &[u32], want: &[u32]) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("length {} vs {}", got.len(), want.len()));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g != w {
            return Err(format!("element {i}: got {g}, want {w}"));
        }
    }
    Ok(())
}

/// Exact comparison of i32 slices.
pub fn check_i32(got: &[i32], want: &[i32]) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("length {} vs {}", got.len(), want.len()));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g != w {
            return Err(format!("element {i}: got {g}, want {w}"));
        }
    }
    Ok(())
}

/// Build a [`Verify`] from a check result.
pub fn verdict(r: Result<(), String>) -> Verify {
    match r {
        Ok(()) => Verify::Pass,
        Err(m) => Verify::Fail(m),
    }
}

/// Measurement window helper: captures clock/launch/kernel-time deltas
/// around the timed region of a benchmark.
pub struct Window {
    t0: f64,
    launches0: u64,
    kernel0: f64,
}

impl Window {
    /// Open a window at the runtime's current state.
    pub fn open(gpu: &dyn gpucmp_runtime::Gpu) -> Self {
        Window {
            t0: gpu.now_ns(),
            launches0: gpu.session().launches(),
            kernel0: gpu.session().kernel_ns_total(),
        }
    }

    /// Close the window: (wall_ns, kernel_ns, launches).
    pub fn close(&self, gpu: &dyn gpucmp_runtime::Gpu) -> (f64, f64, u64) {
        (
            gpu.now_ns() - self.t0,
            gpu.session().kernel_ns_total() - self.kernel0,
            gpu.session().launches() - self.launches0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_orientation() {
        assert!(!Metric::Seconds.higher_is_better());
        assert!(Metric::GBPerSec.higher_is_better());
        assert_eq!(Metric::GFlopsPerSec.unit(), "GFlops/sec");
    }

    #[test]
    fn performance_inverts_seconds() {
        let mk = |metric, value| RunOutput {
            value,
            metric,
            verify: Verify::Pass,
            kernel_ns: 0.0,
            wall_ns: 0.0,
            launches: 0,
            stats: ExecStats::default(),
        };
        assert_eq!(mk(Metric::Seconds, 0.5).performance(), 2.0);
        assert_eq!(mk(Metric::GBPerSec, 80.0).performance(), 80.0);
    }

    #[test]
    fn deterministic_inputs() {
        assert_eq!(rand_f32(7, 10, 0.0, 1.0), rand_f32(7, 10, 0.0, 1.0));
        assert_ne!(rand_u32(1, 10), rand_u32(2, 10));
    }

    #[test]
    fn check_f32_tolerances() {
        assert!(check_f32(&[1.0, 2.0], &[1.0, 2.0 + 1e-5], 1e-4).is_ok());
        assert!(check_f32(&[1.0], &[1.1], 1e-4).is_err());
        assert!(check_f32(&[1.0], &[1.0, 2.0], 1e-4).is_err());
    }

    #[test]
    fn check_exact() {
        assert!(check_u32(&[1, 2], &[1, 2]).is_ok());
        assert!(check_u32(&[1, 2], &[2, 1]).is_err());
        assert!(check_i32(&[-1], &[-1]).is_ok());
    }
}
