//! BFS — Rodinia-style level-synchronous breadth-first search (paper
//! Table II, sec).
//!
//! One pair of kernel launches per BFS level plus a host read-back of the
//! "changed" flag, so the *kernel-launch overhead* dominates scaling — this
//! is the benchmark the paper uses to expose OpenCL's larger launch time
//! (Section IV-B-4).

use crate::common::{check_i32, rng, verdict, Benchmark, Metric, RunOutput, Scale, Window};
use gpucmp_compiler::{global_id_x, ld_global, DslKernel, Expr, KernelDef, Unroll};
use gpucmp_ptx::Ty;
use gpucmp_runtime::{Gpu, GpuExt, RtError};
use gpucmp_sim::{ExecStats, LaunchConfig};
use rand::Rng;
use std::collections::VecDeque;

/// A CSR graph.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Node edge-list offsets (len = nodes + 1).
    pub offsets: Vec<i32>,
    /// Edge targets.
    pub edges: Vec<i32>,
}

impl Graph {
    /// Random graph with `nodes` nodes and average degree `degree`,
    /// deterministic in `seed`. Node 0 is connected into a ring so the
    /// graph is connected and BFS reaches everything.
    pub fn random(nodes: usize, degree: usize, seed: u64) -> Self {
        let mut r = rng(seed);
        let mut adj: Vec<Vec<i32>> = vec![Vec::with_capacity(degree + 2); nodes];
        for (v, edges) in adj.iter_mut().enumerate() {
            let next = (v + 1) % nodes;
            edges.push(next as i32);
            for _ in 0..degree {
                edges.push(r.gen_range(0..nodes) as i32);
            }
        }
        let mut offsets = Vec::with_capacity(nodes + 1);
        let mut edges = Vec::new();
        offsets.push(0);
        for a in &adj {
            edges.extend_from_slice(a);
            offsets.push(edges.len() as i32);
        }
        Graph { offsets, edges }
    }

    /// Node count.
    pub fn nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// CPU reference BFS distances from node 0 (-1 = unreachable).
    pub fn bfs_cpu(&self) -> Vec<i32> {
        let n = self.nodes();
        let mut dist = vec![-1i32; n];
        let mut q = VecDeque::new();
        dist[0] = 0;
        q.push_back(0usize);
        while let Some(v) = q.pop_front() {
            for e in self.offsets[v]..self.offsets[v + 1] {
                let w = self.edges[e as usize] as usize;
                if dist[w] < 0 {
                    dist[w] = dist[v] + 1;
                    q.push_back(w);
                }
            }
        }
        dist
    }
}

/// BFS benchmark.
#[derive(Clone, Debug)]
pub struct Bfs {
    /// Node count.
    pub nodes: usize,
    /// Average out-degree.
    pub degree: usize,
    /// Overlap each level's `changed`-flag reset (a host→device transfer)
    /// with that level's expand kernel on a second stream; the update
    /// kernel waits on the reset's event. Hides one PCIe round-trip
    /// latency per BFS level. Off by default — the paper's runs are
    /// synchronous.
    pub streams: bool,
}

impl Bfs {
    /// Construct with the given scale.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Bfs {
                nodes: 4096,
                degree: 4,
                streams: false,
            },
            Scale::Paper => Bfs {
                nodes: 65536,
                degree: 6,
                streams: false,
            },
        }
    }

    /// Toggle the per-level reset/expand overlap.
    pub fn with_streams(mut self, on: bool) -> Self {
        self.streams = on;
        self
    }

    /// Kernel 1: expand the current frontier, writing tentative costs and
    /// the updating mask.
    fn kernel_expand(&self) -> KernelDef {
        let mut k = DslKernel::new("bfs_expand");
        let offsets = k.param_ptr("offsets");
        let edges = k.param_ptr("edges");
        let frontier = k.param_ptr("frontier");
        let visited = k.param_ptr("visited");
        let cost = k.param_ptr("cost");
        let updating = k.param_ptr("updating");
        let n = k.param("n", Ty::S32);
        let tid = k.let_(Ty::S32, global_id_x());
        k.if_(Expr::from(tid).lt(n), |k| {
            k.if_(ld_global(frontier.clone(), tid, Ty::S32).ne_(0i32), |k| {
                k.st_global(frontier.clone(), tid, Ty::S32, 0i32);
                let my_cost = k.let_(Ty::S32, ld_global(cost.clone(), tid, Ty::S32));
                let start = k.let_(Ty::S32, ld_global(offsets.clone(), tid, Ty::S32));
                let end = k.let_(
                    Ty::S32,
                    ld_global(offsets.clone(), Expr::from(tid) + 1i32, Ty::S32),
                );
                k.for_(start, end, 1, Unroll::None, |k, e| {
                    let nb = k.let_(Ty::S32, ld_global(edges.clone(), e, Ty::S32));
                    k.if_(ld_global(visited.clone(), nb, Ty::S32).eq_(0i32), |k| {
                        k.st_global(cost.clone(), nb, Ty::S32, Expr::from(my_cost) + 1i32);
                        k.st_global(updating.clone(), nb, Ty::S32, 1i32);
                    });
                });
            });
        });
        k.finish()
    }

    /// Kernel 2: commit the updating mask into the frontier + visited sets
    /// and raise the continue flag.
    fn kernel_update(&self) -> KernelDef {
        let mut k = DslKernel::new("bfs_update");
        let frontier = k.param_ptr("frontier");
        let visited = k.param_ptr("visited");
        let updating = k.param_ptr("updating");
        let changed = k.param_ptr("changed");
        let n = k.param("n", Ty::S32);
        let tid = k.let_(Ty::S32, global_id_x());
        k.if_(Expr::from(tid).lt(n), |k| {
            k.if_(ld_global(updating.clone(), tid, Ty::S32).ne_(0i32), |k| {
                k.st_global(frontier.clone(), tid, Ty::S32, 1i32);
                k.st_global(visited.clone(), tid, Ty::S32, 1i32);
                k.st_global(updating.clone(), tid, Ty::S32, 0i32);
                k.st_global(changed.clone(), 0i32, Ty::S32, 1i32);
            });
        });
        k.finish()
    }
}

impl Benchmark for Bfs {
    fn name(&self) -> &'static str {
        if self.streams {
            "BFS+streams"
        } else {
            "BFS"
        }
    }

    fn metric(&self) -> Metric {
        Metric::Seconds
    }

    fn run(&self, gpu: &mut dyn Gpu) -> Result<RunOutput, RtError> {
        let g = Graph::random(self.nodes, self.degree, 0xBF5);
        let n = g.nodes();
        let k1 = gpu.build(&self.kernel_expand())?;
        let k2 = gpu.build(&self.kernel_update())?;
        let d_off = gpu.malloc((g.offsets.len() * 4) as u64)?;
        let d_edges = gpu.malloc((g.edges.len() * 4) as u64)?;
        let d_frontier = gpu.malloc((n * 4) as u64)?;
        let d_visited = gpu.malloc((n * 4) as u64)?;
        let d_cost = gpu.malloc((n * 4) as u64)?;
        let d_updating = gpu.malloc((n * 4) as u64)?;
        let d_changed = gpu.malloc(4)?;
        gpu.h2d_t(d_off, &g.offsets)?;
        gpu.h2d_t(d_edges, &g.edges)?;
        let mut frontier = vec![0i32; n];
        frontier[0] = 1;
        let mut visited = vec![0i32; n];
        visited[0] = 1;
        let mut cost = vec![-1i32; n];
        cost[0] = 0;
        gpu.h2d_t(d_frontier, &frontier)?;
        gpu.h2d_t(d_visited, &visited)?;
        gpu.h2d_t(d_cost, &cost)?;
        gpu.h2d_t(d_updating, &vec![0i32; n])?;

        let block = 256u32;
        let grid = (n as u32).div_ceil(block);
        // Streamed mode: the expand kernel never touches `changed`, so the
        // flag reset rides a second stream and overlaps it; the update
        // kernel (which writes the flag) joins on the reset's event.
        let streams = if self.streams {
            Some((gpu.create_stream(), gpu.create_stream()))
        } else {
            None
        };
        let mut stats = ExecStats::default();
        let win = Window::open(gpu);
        loop {
            let cfg1 = LaunchConfig::new(grid, block)
                .arg_ptr(d_off)
                .arg_ptr(d_edges)
                .arg_ptr(d_frontier)
                .arg_ptr(d_visited)
                .arg_ptr(d_cost)
                .arg_ptr(d_updating)
                .arg_i32(n as i32);
            let cfg2 = LaunchConfig::new(grid, block)
                .arg_ptr(d_frontier)
                .arg_ptr(d_visited)
                .arg_ptr(d_updating)
                .arg_ptr(d_changed)
                .arg_i32(n as i32);
            let flag = if let Some((work, aux)) = streams {
                let reset = gpu.enqueue_h2d_t(aux, d_changed, &[0i32])?;
                let (_, l1) = gpu.enqueue_launch(work, k1, cfg1)?;
                stats.merge(&l1.report.stats);
                gpu.stream_wait_event(work, reset)?;
                let (_, l2) = gpu.enqueue_launch(work, k2, cfg2)?;
                stats.merge(&l2.report.stats);
                let ev = gpu.enqueue_d2h_t::<i32>(work, d_changed, 1)?;
                gpu.take_readback_t::<i32>(ev)?
            } else {
                gpu.h2d_t(d_changed, &[0])?;
                let l1 = gpu.launch(k1, &cfg1)?;
                stats.merge(&l1.report.stats);
                let l2 = gpu.launch(k2, &cfg2)?;
                stats.merge(&l2.report.stats);
                gpu.d2h_t::<i32>(d_changed, 1)?
            };
            if flag[0] == 0 {
                break;
            }
        }
        let (wall_ns, kernel_ns, launches) = win.close(gpu);
        let got = gpu.d2h_t::<i32>(d_cost, n)?;
        let want = g.bfs_cpu();
        let verify = verdict(check_i32(&got, &want));
        Ok(RunOutput {
            value: wall_ns * 1e-9,
            metric: Metric::Seconds,
            verify,
            kernel_ns,
            wall_ns,
            launches,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_runtime::{Cuda, OpenCl};
    use gpucmp_sim::DeviceSpec;

    #[test]
    fn bfs_distances_match_cpu() {
        let b = Bfs::new(Scale::Quick);
        let mut cuda = Cuda::new(DeviceSpec::gtx280()).unwrap();
        let r = b.run(&mut cuda).unwrap();
        assert!(r.verify.is_pass(), "{:?}", r.verify);
        assert!(r.launches >= 4, "needs several levels, got {}", r.launches);
        let mut ocl = OpenCl::create_any(DeviceSpec::gtx480());
        assert!(b.run(&mut ocl).unwrap().verify.is_pass());
    }

    #[test]
    fn launch_overhead_makes_opencl_slower() {
        // Section IV-B-4: BFS relaunches kernels per level, so OpenCL's
        // larger launch time makes it lose (PR < 1).
        let b = Bfs::new(Scale::Quick);
        let mut cuda = Cuda::new(DeviceSpec::gtx280()).unwrap();
        let tc = b.run(&mut cuda).unwrap().value;
        let mut ocl = OpenCl::create_any(DeviceSpec::gtx280());
        let to = b.run(&mut ocl).unwrap().value;
        let pr = tc / to; // seconds → PR = t_cuda / t_opencl
        assert!(pr < 1.0, "OpenCL should be slower: PR = {pr}");
        assert!(pr > 0.4, "gap should stay moderate: PR = {pr}");
    }

    #[test]
    fn streamed_reset_overlap_verifies_and_finishes_earlier() {
        let sync_b = Bfs::new(Scale::Quick);
        let stream_b = sync_b.clone().with_streams(true);
        let mut g1 = Cuda::new(DeviceSpec::gtx280()).unwrap();
        let r_sync = sync_b.run(&mut g1).unwrap();
        let t_sync = g1.now_ns();
        let mut g2 = Cuda::new(DeviceSpec::gtx280()).unwrap();
        let r_stream = stream_b.run(&mut g2).unwrap();
        let t_stream = g2.now_ns();
        assert!(r_stream.verify.is_pass(), "{:?}", r_stream.verify);
        // same number of levels, same launches — only the schedule differs
        assert_eq!(r_stream.launches, r_sync.launches);
        // every level hides the flag-reset transfer under the expand
        // kernel, so the total strictly drops
        assert!(
            t_stream < t_sync,
            "streamed end {t_stream} ns should beat sync end {t_sync} ns"
        );
    }

    #[test]
    fn graph_generator_is_connected_and_deterministic() {
        let g1 = Graph::random(1000, 3, 42);
        let g2 = Graph::random(1000, 3, 42);
        assert_eq!(g1.offsets, g2.offsets);
        assert_eq!(g1.edges, g2.edges);
        let dist = g1.bfs_cpu();
        assert!(dist.iter().all(|&d| d >= 0), "ring edge keeps it connected");
    }
}
