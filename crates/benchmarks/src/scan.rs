//! Scan — work-efficient Blelloch exclusive prefix sum (NVIDIA SDK
//! `scan`; paper Table II, MElements/s).
//!
//! Three launches: per-block scan of 2T elements in shared memory
//! (up-sweep + down-sweep), a single-block scan of the block sums, and a
//! uniform add.

use crate::common::{check_u32, rand_u32, verdict, Benchmark, Metric, RunOutput, Scale, Window};
use gpucmp_compiler::{ld_global, Builtin, DslKernel, Expr, KernelDef};
use gpucmp_ptx::Ty;
use gpucmp_runtime::{Gpu, GpuExt, RtError};
use gpucmp_sim::{ExecStats, LaunchConfig};

/// Threads per block (each block scans `2 * BLOCK` elements).
const BLOCK: u32 = 256;

/// Scan benchmark. `n` must be a multiple of `2 * BLOCK` and at most
/// `(2 * BLOCK)^2` so the block sums fit one block.
#[derive(Clone, Debug)]
pub struct Scan {
    /// Elements to scan.
    pub n: u32,
}

impl Scan {
    /// Construct with the given scale.
    pub fn new(scale: Scale) -> Self {
        Scan {
            n: match scale {
                Scale::Quick => 8 * 1024,
                Scale::Paper => 128 * 1024,
            },
        }
    }

    /// The per-block Blelloch scan kernel. Also used (with a single block)
    /// to scan the block sums.
    fn kernel_scan(&self) -> KernelDef {
        let elems = (2 * BLOCK) as i32;
        let mut k = DslKernel::new("scan_block");
        let input = k.param_ptr("input");
        let output = k.param_ptr("output");
        let sums = k.param_ptr("block_sums");
        let sm = k.shared_array(Ty::U32, 2 * BLOCK);
        let tid = k.let_(Ty::S32, Expr::from(Builtin::TidX));
        let base = k.let_(Ty::S32, Expr::from(Builtin::CtaidX) * elems);
        k.st_shared(
            sm,
            Expr::from(tid) * 2i32,
            ld_global(
                input.clone(),
                Expr::from(base) + Expr::from(tid) * 2i32,
                Ty::U32,
            ),
        );
        k.st_shared(
            sm,
            Expr::from(tid) * 2i32 + 1i32,
            ld_global(
                input.clone(),
                Expr::from(base) + Expr::from(tid) * 2i32 + 1i32,
                Ty::U32,
            ),
        );
        let offset = k.let_(Ty::S32, 1i32);
        // up-sweep
        let d = k.let_(Ty::S32, BLOCK as i32);
        k.while_(Expr::from(d).gt(0i32), |k| {
            k.barrier();
            k.if_(Expr::from(tid).lt(d), |k| {
                let ai = k.let_(
                    Ty::S32,
                    Expr::from(offset) * (Expr::from(tid) * 2i32 + 1i32) - 1i32,
                );
                let bi = k.let_(
                    Ty::S32,
                    Expr::from(offset) * (Expr::from(tid) * 2i32 + 2i32) - 1i32,
                );
                k.st_shared(sm, bi, sm.ld(bi) + sm.ld(ai));
            });
            k.assign(offset, Expr::from(offset) * 2i32);
            k.assign(d, Expr::from(d) >> 1i32);
        });
        // record total, clear the root
        k.barrier();
        k.if_(Expr::from(tid).eq_(0i32), |k| {
            k.st_global(
                sums.clone(),
                Expr::from(Builtin::CtaidX),
                Ty::U32,
                sm.ld(elems - 1),
            );
            k.st_shared(sm, elems - 1, 0u32);
        });
        // down-sweep
        let d2 = k.let_(Ty::S32, 1i32);
        k.while_(Expr::from(d2).lt(elems), |k| {
            k.assign(offset, Expr::from(offset) >> 1i32);
            k.barrier();
            k.if_(Expr::from(tid).lt(d2), |k| {
                let ai = k.let_(
                    Ty::S32,
                    Expr::from(offset) * (Expr::from(tid) * 2i32 + 1i32) - 1i32,
                );
                let bi = k.let_(
                    Ty::S32,
                    Expr::from(offset) * (Expr::from(tid) * 2i32 + 2i32) - 1i32,
                );
                let t = k.let_(Ty::U32, sm.ld(ai));
                k.st_shared(sm, ai, sm.ld(bi));
                k.st_shared(sm, bi, sm.ld(bi) + t);
            });
            k.assign(d2, Expr::from(d2) * 2i32);
        });
        k.barrier();
        k.st_global(
            output.clone(),
            Expr::from(base) + Expr::from(tid) * 2i32,
            Ty::U32,
            sm.ld(Expr::from(tid) * 2i32),
        );
        k.st_global(
            output,
            Expr::from(base) + Expr::from(tid) * 2i32 + 1i32,
            Ty::U32,
            sm.ld(Expr::from(tid) * 2i32 + 1i32),
        );
        k.finish()
    }

    /// Uniform add of the scanned block sums.
    fn kernel_uniform_add(&self) -> KernelDef {
        let elems = (2 * BLOCK) as i32;
        let mut k = DslKernel::new("uniform_add");
        let output = k.param_ptr("output");
        let sums = k.param_ptr("scanned_sums");
        let tid = k.let_(Ty::S32, Expr::from(Builtin::TidX));
        let base = k.let_(Ty::S32, Expr::from(Builtin::CtaidX) * elems);
        let add = k.let_(
            Ty::U32,
            ld_global(sums.clone(), Expr::from(Builtin::CtaidX), Ty::U32),
        );
        for half in 0..2i32 {
            let idx = Expr::from(base) + Expr::from(tid) * 2i32 + half;
            k.st_global(
                output.clone(),
                idx.clone(),
                Ty::U32,
                ld_global(output.clone(), idx, Ty::U32) + add,
            );
        }
        k.finish()
    }

    /// CPU exclusive prefix sum (wrapping).
    pub fn reference(data: &[u32]) -> Vec<u32> {
        let mut out = Vec::with_capacity(data.len());
        let mut acc = 0u32;
        for &v in data {
            out.push(acc);
            acc = acc.wrapping_add(v);
        }
        out
    }
}

impl Benchmark for Scan {
    fn name(&self) -> &'static str {
        "Scan"
    }

    fn metric(&self) -> Metric {
        Metric::MElementsPerSec
    }

    fn run(&self, gpu: &mut dyn Gpu) -> Result<RunOutput, RtError> {
        let n = self.n as usize;
        let per_block = (2 * BLOCK) as usize;
        assert_eq!(n % per_block, 0, "n must be a multiple of {per_block}");
        let blocks = (n / per_block) as u32;
        assert!(
            blocks as usize <= per_block,
            "block sums must fit one block"
        );
        let scan = gpu.build(&self.kernel_scan())?;
        let uadd = gpu.build(&self.kernel_uniform_add())?;
        let d_in = gpu.malloc((n * 4) as u64)?;
        let d_out = gpu.malloc((n * 4) as u64)?;
        // block sums padded to one full block of input for the second pass
        let d_sums = gpu.malloc((per_block * 4) as u64)?;
        let d_sums_scanned = gpu.malloc((per_block * 4) as u64)?;
        let d_total = gpu.malloc(16)?;
        let data = rand_u32(0x5CA9, n);
        gpu.h2d_t(d_sums, &vec![0i32; per_block])?;
        gpu.h2d_t(d_in, &data)?;
        let mut stats = ExecStats::default();
        let win = Window::open(gpu);
        let cfg1 = LaunchConfig::new(blocks, BLOCK)
            .arg_ptr(d_in)
            .arg_ptr(d_out)
            .arg_ptr(d_sums);
        let l = gpu.launch(scan, &cfg1)?;
        stats.merge(&l.report.stats);
        let cfg2 = LaunchConfig::new(1u32, BLOCK)
            .arg_ptr(d_sums)
            .arg_ptr(d_sums_scanned)
            .arg_ptr(d_total);
        let l = gpu.launch(scan, &cfg2)?;
        stats.merge(&l.report.stats);
        let cfg3 = LaunchConfig::new(blocks, BLOCK)
            .arg_ptr(d_out)
            .arg_ptr(d_sums_scanned);
        let l = gpu.launch(uadd, &cfg3)?;
        stats.merge(&l.report.stats);
        let (wall_ns, kernel_ns, launches) = win.close(gpu);
        let got = gpu.d2h_t::<u32>(d_out, n)?;
        let want = Self::reference(&data);
        let verify = verdict(check_u32(&got, &want));
        Ok(RunOutput {
            value: n as f64 / (wall_ns * 1e-3), // elements per µs == MElem/s
            metric: Metric::MElementsPerSec,
            verify,
            kernel_ns,
            wall_ns,
            launches,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_runtime::{Cuda, OpenCl};
    use gpucmp_sim::DeviceSpec;

    #[test]
    fn scan_is_exact_on_both_apis() {
        let b = Scan::new(Scale::Quick);
        let mut cuda = Cuda::new(DeviceSpec::gtx280()).unwrap();
        let r = b.run(&mut cuda).unwrap();
        assert!(r.verify.is_pass(), "{:?}", r.verify);
        assert_eq!(r.launches, 3);
        let mut ocl = OpenCl::create_any(DeviceSpec::gtx480());
        assert!(b.run(&mut ocl).unwrap().verify.is_pass());
    }

    #[test]
    fn reference_scan_is_exclusive() {
        assert_eq!(Scan::reference(&[1, 2, 3]), vec![0, 1, 3]);
        assert_eq!(Scan::reference(&[u32::MAX, 2]), vec![0, u32::MAX]);
    }

    #[test]
    fn scan_works_on_wide_wavefront_devices() {
        // Scan uses barriers (not warp-synchronous tricks), so unlike RdxS
        // it is correct on 64-wide wavefront devices.
        let b = Scan::new(Scale::Quick);
        let mut ati = OpenCl::create_any(DeviceSpec::hd5870());
        assert!(b.run(&mut ati).unwrap().verify.is_pass());
    }
}
