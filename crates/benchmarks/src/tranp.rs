//! TranP — self-written matrix transposition through shared memory (paper
//! Table II "SELF").
//!
//! The tiled version stages a 16x16 tile in shared memory (padded to
//! stride 17 so column reads don't conflict on the banks) and writes both
//! streams coalesced. The [`TranPOpts`] expose the two ablations the paper
//! discusses: dropping the padding (bank conflicts) and dropping shared
//! memory entirely (the direct copy that is *faster* on the Intel920,
//! where "local memory" is an emulated overhead — Section V).

use crate::common::{check_f32, rand_f32, verdict, Benchmark, Metric, RunOutput, Scale, Window};
use gpucmp_compiler::{ld_global, Builtin, DslKernel, Expr, KernelDef};
use gpucmp_ptx::Ty;
use gpucmp_runtime::{Gpu, GpuExt, RtError};
use gpucmp_sim::LaunchConfig;

/// Tile edge.
const TILE: u32 = 16;

/// Option overrides.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TranPOpts {
    /// Stage through shared memory (default true).
    pub use_shared: bool,
    /// Pad the tile stride to avoid bank conflicts (default true).
    pub pad: bool,
}

impl Default for TranPOpts {
    fn default() -> Self {
        TranPOpts {
            use_shared: true,
            pad: true,
        }
    }
}

/// TranP benchmark (square n x n, n a multiple of 16).
#[derive(Clone, Debug)]
pub struct TranP {
    /// Matrix edge.
    pub n: u32,
    /// Options.
    pub opts: TranPOpts,
}

impl TranP {
    /// Construct with the given scale.
    pub fn new(scale: Scale) -> Self {
        TranP {
            n: match scale {
                Scale::Quick => 128,
                Scale::Paper => 1024,
            },
            opts: TranPOpts::default(),
        }
    }

    /// Disable the shared-memory staging (direct copy).
    pub fn direct(mut self) -> Self {
        self.opts.use_shared = false;
        self
    }

    /// Disable tile padding.
    pub fn unpadded(mut self) -> Self {
        self.opts.pad = true;
        self.opts.pad = false;
        self
    }

    fn kernel(&self) -> KernelDef {
        let stride = if self.opts.pad { TILE + 1 } else { TILE };
        let mut k = DslKernel::new("transpose");
        let input = k.param_ptr("input");
        let output = k.param_ptr("output");
        let n = k.param("n", Ty::S32);
        let tx = k.let_(Ty::S32, Expr::from(Builtin::TidX));
        let ty_ = k.let_(Ty::S32, Expr::from(Builtin::TidY));
        let x = k.let_(Ty::S32, Expr::from(Builtin::CtaidX) * TILE as i32 + tx);
        let y = k.let_(Ty::S32, Expr::from(Builtin::CtaidY) * TILE as i32 + ty_);
        if self.opts.use_shared {
            let tile = k.shared_array(Ty::F32, TILE * stride);
            k.st_shared(
                tile,
                Expr::from(ty_) * stride as i32 + tx,
                ld_global(input.clone(), Expr::from(y) * n.clone() + x, Ty::F32),
            );
            k.barrier();
            let xo = k.let_(Ty::S32, Expr::from(Builtin::CtaidY) * TILE as i32 + tx);
            let yo = k.let_(Ty::S32, Expr::from(Builtin::CtaidX) * TILE as i32 + ty_);
            k.st_global(
                output,
                Expr::from(yo) * n.clone() + xo,
                Ty::F32,
                tile.ld(Expr::from(tx) * stride as i32 + ty_),
            );
        } else {
            // direct: coalesced read, scattered write
            k.st_global(
                output,
                Expr::from(x) * n.clone() + y,
                Ty::F32,
                ld_global(input.clone(), Expr::from(y) * n.clone() + x, Ty::F32),
            );
        }
        k.finish()
    }
}

impl Benchmark for TranP {
    fn name(&self) -> &'static str {
        "TranP"
    }

    fn metric(&self) -> Metric {
        Metric::GBPerSec
    }

    fn run(&self, gpu: &mut dyn Gpu) -> Result<RunOutput, RtError> {
        let n = self.n as usize;
        let def = self.kernel();
        let h = gpu.build(&def)?;
        let input = gpu.malloc((n * n * 4) as u64)?;
        let output = gpu.malloc((n * n * 4) as u64)?;
        let data = rand_f32(0x71045, n * n, -1.0, 1.0);
        gpu.h2d_t(input, &data)?;
        let cfg = LaunchConfig::new((self.n / TILE, self.n / TILE), (TILE, TILE))
            .arg_ptr(input)
            .arg_ptr(output)
            .arg_i32(self.n as i32);
        let w = Window::open(gpu);
        let launch = gpu.launch(h, &cfg)?;
        let (wall_ns, kernel_ns, launches) = w.close(gpu);
        let got = gpu.d2h_t::<f32>(output, n * n)?;
        let mut want = vec![0.0f32; n * n];
        for y in 0..n {
            for x in 0..n {
                want[x * n + y] = data[y * n + x];
            }
        }
        let verify = verdict(check_f32(&got, &want, 0.0));
        let bytes = 2 * n as u64 * n as u64 * 4;
        Ok(RunOutput {
            value: bytes as f64 / kernel_ns,
            metric: Metric::GBPerSec,
            verify,
            kernel_ns,
            wall_ns,
            launches,
            stats: launch.report.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_runtime::{Cuda, OpenCl};
    use gpucmp_sim::{DeviceKind, DeviceSpec};

    #[test]
    fn transpose_verifies_all_variants() {
        let mut cuda = Cuda::new(DeviceSpec::gtx480()).unwrap();
        for b in [
            TranP::new(Scale::Quick),
            TranP::new(Scale::Quick).direct(),
            TranP::new(Scale::Quick).unpadded(),
        ] {
            let r = b.run(&mut cuda).unwrap();
            assert!(r.verify.is_pass(), "{:?} {:?}", b.opts, r.verify);
            assert!(r.value > 0.0);
        }
    }

    #[test]
    fn padding_avoids_bank_conflicts() {
        let mut cuda = Cuda::new(DeviceSpec::gtx280()).unwrap();
        let padded = TranP::new(Scale::Quick).run(&mut cuda).unwrap();
        let unpadded = TranP::new(Scale::Quick).unpadded().run(&mut cuda).unwrap();
        assert!(
            unpadded.stats.shared_conflict_cycles > padded.stats.shared_conflict_cycles,
            "conflicts: padded {} unpadded {}",
            padded.stats.shared_conflict_cycles,
            unpadded.stats.shared_conflict_cycles
        );
    }

    #[test]
    fn local_memory_hurts_on_cpu_device() {
        // Section V: on the Intel920 the shared-memory version collapses
        // (emulated local memory) while the direct copy is fine.
        let mut cpu = OpenCl::create(DeviceSpec::intel920(), DeviceKind::Cpu).unwrap();
        let tiled = TranP::new(Scale::Quick).run(&mut cpu).unwrap();
        let direct = TranP::new(Scale::Quick).direct().run(&mut cpu).unwrap();
        assert!(tiled.verify.is_pass() && direct.verify.is_pass());
        assert!(
            direct.value > tiled.value * 1.5,
            "direct {} GB/s vs tiled {} GB/s",
            direct.value,
            tiled.value
        );
    }

    #[test]
    fn both_apis_agree_functionally() {
        let b = TranP::new(Scale::Quick);
        let mut ocl = OpenCl::create_any(DeviceSpec::hd5870());
        let r = b.run(&mut ocl).unwrap();
        assert!(r.verify.is_pass());
    }
}
