//! Micro-workloads promoted from the fuzz corpus (the PR 8 follow-up):
//! the `atomic-histogram.kdsl` and `shared-rotate.kdsl` cases scaled from
//! 64-thread regression kernels into timed campaign rows.
//!
//! Both keep the corpus guard rails that make them schedule-independent —
//! the histogram's adds commute and never capture the old value, and the
//! rotate closes its shared-memory write and read epochs with barriers —
//! so verification is exact (i32) on every device, tier and thread count.

use crate::common::{check_i32, rng, verdict, Benchmark, Metric, RunOutput, Scale, Window};
use gpucmp_compiler::{global_id_x, ld_global, Builtin, DslKernel, Expr, KernelDef};
use gpucmp_ptx::{AtomOp, Space, Ty};
use gpucmp_runtime::{Gpu, GpuExt, RtError};
use gpucmp_sim::LaunchConfig;
use rand::Rng;

/// Histogram bin count (power of two; the kernel masks with `BINS - 1`).
pub const BINS: usize = 64;

/// AtomHist — data-dependent global atomic histogram.
///
/// Every thread loads one key and atomically increments its bin: a pure
/// atomic-throughput row, with contention set by the key distribution.
/// The returned old value is deliberately never used (the corpus
/// guard rail for schedule independence).
#[derive(Clone, Debug)]
pub struct AtomHist {
    /// Keys to bin.
    pub n: u32,
    /// Threads per block.
    pub block_size: u32,
}

impl AtomHist {
    /// Construct with the given scale.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Quick => AtomHist {
                n: 1 << 13,
                block_size: 128,
            },
            Scale::Paper => AtomHist {
                n: 1 << 18,
                block_size: 256,
            },
        }
    }

    fn kernel(&self) -> KernelDef {
        let mut k = DslKernel::new("atom_hist");
        let keys = k.param_ptr("keys");
        let hist = k.param_ptr("hist");
        let n = k.param("n", Ty::S32);
        let gid = k.let_(Ty::S32, global_id_x());
        k.if_(Expr::from(gid).lt(n), |k| {
            let key = k.let_(Ty::S32, ld_global(keys.clone(), gid, Ty::S32));
            k.atomic(
                AtomOp::Add,
                Space::Global,
                hist.clone(),
                Expr::from(key) & (BINS as i32 - 1),
                Ty::S32,
                1i32,
            );
        });
        k.finish()
    }
}

impl Benchmark for AtomHist {
    fn name(&self) -> &'static str {
        "AtomHist"
    }

    fn metric(&self) -> Metric {
        Metric::MElementsPerSec
    }

    fn run(&self, gpu: &mut dyn Gpu) -> Result<RunOutput, RtError> {
        let n = self.n as usize;
        let h = gpu.build(&self.kernel())?;
        let keys = gpu.alloc::<i32>(n)?;
        let hist = gpu.alloc::<i32>(BINS)?;
        // Zipf-ish skew: low bins are hot, which is the interesting
        // contention regime for a global-atomic row.
        let mut r = rng(0xA70);
        let data: Vec<i32> = (0..n)
            .map(|_| {
                let v: u32 = r.gen();
                (v >> (v % 7)) as i32
            })
            .collect();
        gpu.h2d_buf(&keys, &data)?;
        gpu.h2d_buf(&hist, &[0i32; BINS])?;
        let cfg = LaunchConfig::builder()
            .grid(self.n.div_ceil(self.block_size))
            .block(self.block_size)
            .arg_ptr(keys)
            .arg_ptr(hist)
            .arg_i32(n as i32)
            .build();
        let w = Window::open(gpu);
        let l = gpu.launch(h, &cfg)?;
        let (wall_ns, kernel_ns, launches) = w.close(gpu);
        let got = gpu.d2h_buf(&hist)?;
        let mut want = [0i32; BINS];
        for &v in &data {
            want[v as usize & (BINS - 1)] += 1;
        }
        Ok(RunOutput {
            value: n as f64 * 1e3 / kernel_ns,
            metric: Metric::MElementsPerSec,
            verify: verdict(check_i32(&got, &want)),
            kernel_ns,
            wall_ns,
            launches,
            stats: l.report.stats,
        })
    }
}

/// SharedRot — the epoch-closed shared-memory rotate.
///
/// Each thread publishes its element into its own shared slot, a barrier
/// closes the write epoch, every thread reads its right neighbour's slot
/// (wrapping within the block), and a trailing barrier closes the read
/// epoch: a pure shared-memory latency/bank row with zero reuse.
#[derive(Clone, Debug)]
pub struct SharedRot {
    /// Elements to rotate (kept a multiple of `block_size` so every
    /// shared slot is written before the rotated read).
    pub n: u32,
    /// Threads per block (= shared slots per block).
    pub block_size: u32,
}

impl SharedRot {
    /// Construct with the given scale.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Quick => SharedRot {
                n: 1 << 13,
                block_size: 128,
            },
            Scale::Paper => SharedRot {
                n: 1 << 20,
                block_size: 256,
            },
        }
    }

    fn kernel(&self) -> KernelDef {
        let bs = self.block_size as i32;
        let mut k = DslKernel::new("shared_rotate");
        let input = k.param_ptr("input");
        let out = k.param_ptr("out");
        let sm = k.shared_array(Ty::S32, self.block_size);
        let tid = k.let_(Ty::S32, Expr::from(Builtin::TidX));
        let gid = k.let_(Ty::S32, global_id_x());
        k.st_shared(sm, tid, ld_global(input.clone(), gid, Ty::S32) + 3i32);
        k.barrier();
        let v = k.let_(Ty::S32, sm.ld((Expr::from(tid) + 1i32) % bs));
        k.barrier();
        k.st_global(out, gid, Ty::S32, v);
        k.finish()
    }
}

impl Benchmark for SharedRot {
    fn name(&self) -> &'static str {
        "SharedRot"
    }

    fn metric(&self) -> Metric {
        Metric::MElementsPerSec
    }

    fn run(&self, gpu: &mut dyn Gpu) -> Result<RunOutput, RtError> {
        assert_eq!(self.n % self.block_size, 0, "n must fill its blocks");
        let n = self.n as usize;
        let bs = self.block_size as usize;
        let h = gpu.build(&self.kernel())?;
        let input = gpu.alloc::<i32>(n)?;
        let out = gpu.alloc::<i32>(n)?;
        let mut r = rng(0x5807);
        let data: Vec<i32> = (0..n).map(|_| r.gen_range(-1000..1000)).collect();
        gpu.h2d_buf(&input, &data)?;
        let cfg = LaunchConfig::builder()
            .grid(self.n / self.block_size)
            .block(self.block_size)
            .arg_ptr(input)
            .arg_ptr(out)
            .build();
        let w = Window::open(gpu);
        let l = gpu.launch(h, &cfg)?;
        let (wall_ns, kernel_ns, launches) = w.close(gpu);
        let got = gpu.d2h_buf(&out)?;
        let want: Vec<i32> = (0..n)
            .map(|i| data[i - i % bs + (i % bs + 1) % bs] + 3)
            .collect();
        Ok(RunOutput {
            value: n as f64 * 1e3 / kernel_ns,
            metric: Metric::MElementsPerSec,
            verify: verdict(check_i32(&got, &want)),
            kernel_ns,
            wall_ns,
            launches,
            stats: l.report.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_runtime::{Cuda, OpenCl};
    use gpucmp_sim::{DeviceKind, DeviceSpec};

    fn devices() -> Vec<Box<dyn Gpu>> {
        vec![
            Box::new(Cuda::new(DeviceSpec::gtx280()).unwrap()),
            Box::new(Cuda::new(DeviceSpec::gtx480()).unwrap()),
            Box::new(OpenCl::create_any(DeviceSpec::hd5870())),
            Box::new(OpenCl::create(DeviceSpec::intel920(), DeviceKind::Cpu).unwrap()),
        ]
    }

    #[test]
    fn atom_hist_exact_on_all_devices() {
        let b = AtomHist::new(Scale::Quick);
        for mut gpu in devices() {
            let r = b.run(gpu.as_mut()).unwrap();
            assert!(r.verify.is_pass(), "{:?}", r.verify);
            assert_eq!(r.launches, 1);
            assert!(r.stats.atomics >= b.n as u64);
        }
    }

    #[test]
    fn shared_rot_exact_on_all_devices() {
        let b = SharedRot::new(Scale::Quick);
        for mut gpu in devices() {
            let r = b.run(gpu.as_mut()).unwrap();
            assert!(r.verify.is_pass(), "{:?}", r.verify);
            assert!(r.stats.barriers > 0);
        }
    }

    #[test]
    fn micro_rows_close_between_apis() {
        for b in crate::micro_workloads(Scale::Quick) {
            let mut cuda = Cuda::new(DeviceSpec::gtx480()).unwrap();
            let rc = b.run(&mut cuda).unwrap();
            let mut ocl = OpenCl::create_any(DeviceSpec::gtx480());
            let ro = b.run(&mut ocl).unwrap();
            let pr = ro.value / rc.value;
            assert!((0.5..2.0).contains(&pr), "{}: PR = {pr}", b.name());
        }
    }
}
