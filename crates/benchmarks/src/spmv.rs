//! SPMV — SHOC's sparse matrix-vector multiplication, CSR format (paper
//! Table II, GFlops/s; the texture ablation of Figs 4-5 and the
//! warp-oriented-on-CPU observation of Section V).
//!
//! Two kernel shapes:
//! - **scalar**: one thread per row (the paper's headline variant);
//! - **vector**: 32 threads cooperate on one row with a shared-memory
//!   reduction — great on GPUs, disastrous on the Intel920 OpenCL device
//!   where every work-item carries scheduling overhead (the paper's
//!   3.805 → 0.1247 GFlops observation).
//!
//! The `x` vector is the irregular read-only access; the CUDA default
//! fetches it through texture memory.

use crate::common::{check_f32, rng, verdict, Benchmark, Metric, RunOutput, Scale, Window};
use gpucmp_compiler::{
    global_id_x, ld_global, tex1d, Api, Builtin, DslKernel, Expr, KernelDef, Unroll,
};
use gpucmp_ptx::Ty;
use gpucmp_runtime::{Gpu, GpuExt, RtError};
use gpucmp_sim::LaunchConfig;
use rand::Rng;

/// Virtual warp width of the vector kernel (a *source-level* constant,
/// like SHOC's).
const VWARP: u32 = 32;

/// Which kernel shape to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpmvVariant {
    /// One thread per row.
    Scalar,
    /// 32 threads per row with shared-memory reduction (barrier-based, so
    /// functionally portable — just very inefficient on CPU devices).
    Vector,
}

/// A CSR matrix with f32 values.
#[derive(Clone, Debug)]
pub struct Csr {
    /// Row offsets (len = rows + 1).
    pub row_offsets: Vec<i32>,
    /// Column indices.
    pub cols: Vec<i32>,
    /// Values.
    pub vals: Vec<f32>,
}

impl Csr {
    /// Random matrix with `rows` rows and `nnz_per_row` +- 50% nonzeros,
    /// column indices spread with mild locality around the diagonal.
    pub fn random(rows: usize, nnz_per_row: usize, seed: u64) -> Self {
        let mut r = rng(seed);
        let mut row_offsets = Vec::with_capacity(rows + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        row_offsets.push(0);
        for i in 0..rows {
            let count = r.gen_range(nnz_per_row / 2..=nnz_per_row * 3 / 2).max(1);
            let mut row_cols: Vec<i32> = (0..count)
                .map(|_| {
                    let lo = i.saturating_sub(rows / 8);
                    let hi = (i + rows / 8).min(rows - 1);
                    r.gen_range(lo..=hi) as i32
                })
                .collect();
            row_cols.sort_unstable();
            row_cols.dedup();
            for c in row_cols {
                cols.push(c);
                // quantised values keep f32 dot products order-tolerant
                vals.push(r.gen_range(1..16) as f32 / 16.0);
            }
            row_offsets.push(cols.len() as i32);
        }
        Csr {
            row_offsets,
            cols,
            vals,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Nonzero count.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }
}

/// SPMV benchmark.
#[derive(Clone, Debug)]
pub struct Spmv {
    /// Rows.
    pub rows: usize,
    /// Target nonzeros per row.
    pub nnz_per_row: usize,
    /// Kernel shape.
    pub variant: SpmvVariant,
    /// Texture override; `None` = paper default (CUDA yes, OpenCL no).
    pub use_texture: Option<bool>,
}

impl Spmv {
    /// Construct with the given scale (scalar variant).
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Spmv {
                rows: 1024,
                nnz_per_row: 16,
                variant: SpmvVariant::Scalar,
                use_texture: None,
            },
            Scale::Paper => Spmv {
                rows: 8192,
                nnz_per_row: 32,
                variant: SpmvVariant::Scalar,
                use_texture: None,
            },
        }
    }

    /// Select the warp-per-row kernel.
    pub fn vector(mut self) -> Self {
        self.variant = SpmvVariant::Vector;
        self
    }

    /// Override texture use.
    pub fn with_texture(mut self, v: bool) -> Self {
        self.use_texture = Some(v);
        self
    }

    fn x_fetch(&self, use_texture: bool, x: &Expr, col: impl Into<Expr>) -> Expr {
        if use_texture {
            tex1d(0, col, Ty::F32)
        } else {
            ld_global(x.clone(), col, Ty::F32)
        }
    }

    fn kernel_scalar(&self, use_texture: bool) -> KernelDef {
        let mut k = DslKernel::new("spmv_csr_scalar");
        let vals = k.param_ptr("vals");
        let cols = k.param_ptr("cols");
        let row_off = k.param_ptr("row_offsets");
        let x = k.param_ptr("x");
        let y = k.param_ptr("y");
        let n = k.param("n_rows", Ty::S32);
        let row = k.let_(Ty::S32, global_id_x());
        k.if_(Expr::from(row).lt(n), |k| {
            let acc = k.let_(Ty::F32, 0.0f32);
            let start = k.let_(Ty::S32, ld_global(row_off.clone(), row, Ty::S32));
            let end = k.let_(
                Ty::S32,
                ld_global(row_off.clone(), Expr::from(row) + 1i32, Ty::S32),
            );
            k.for_(start, end, 1, Unroll::None, |k, e| {
                let c = k.let_(Ty::S32, ld_global(cols.clone(), e.clone(), Ty::S32));
                let v = ld_global(vals.clone(), e, Ty::F32);
                let xv = self.x_fetch(use_texture, &x, c);
                k.assign(acc, Expr::from(acc) + v * xv);
            });
            k.st_global(y.clone(), row, Ty::F32, acc);
        });
        k.finish()
    }

    fn kernel_vector(&self, use_texture: bool) -> KernelDef {
        let mut k = DslKernel::new("spmv_csr_vector");
        let vals = k.param_ptr("vals");
        let cols = k.param_ptr("cols");
        let row_off = k.param_ptr("row_offsets");
        let x = k.param_ptr("x");
        let y = k.param_ptr("y");
        let n = k.param("n_rows", Ty::S32);
        let sm = k.shared_array(Ty::F32, 128); // one block's partials
        let tid = k.let_(Ty::S32, Expr::from(Builtin::TidX));
        let lane = k.let_(Ty::S32, Expr::from(tid) % VWARP as i32);
        let vwarp_in_block = k.let_(Ty::S32, Expr::from(tid) / VWARP as i32);
        let row = k.let_(
            Ty::S32,
            Expr::from(Builtin::CtaidX) * (128 / VWARP) as i32 + vwarp_in_block,
        );
        let acc = k.let_(Ty::F32, 0.0f32);
        k.if_(Expr::from(row).lt(n.clone()), |k| {
            let start = k.let_(Ty::S32, ld_global(row_off.clone(), row, Ty::S32));
            let end = k.let_(
                Ty::S32,
                ld_global(row_off.clone(), Expr::from(row) + 1i32, Ty::S32),
            );
            let e = k.let_(Ty::S32, Expr::from(start) + lane);
            k.while_(Expr::from(e).lt(end), |k| {
                let c = k.let_(Ty::S32, ld_global(cols.clone(), e, Ty::S32));
                let v = ld_global(vals.clone(), e, Ty::F32);
                let xv = self.x_fetch(use_texture, &x, c);
                k.assign(acc, Expr::from(acc) + v * xv);
                k.assign(e, Expr::from(e) + VWARP as i32);
            });
        });
        k.st_shared(sm, tid, acc);
        // barrier-based tree reduction within each virtual warp — portable,
        // unlike the warp-synchronous radix sort
        let mut stride = (VWARP / 2) as i64;
        while stride > 0 {
            k.barrier();
            k.if_(Expr::from(lane).lt(stride as i32), |k| {
                k.st_shared(sm, tid, sm.ld(tid) + sm.ld(Expr::from(tid) + stride as i32));
            });
            stride /= 2;
        }
        k.barrier();
        k.if_(Expr::from(lane).eq_(0i32), |k| {
            k.if_(Expr::from(row).lt(n), |k| {
                k.st_global(y.clone(), row, Ty::F32, sm.ld(tid));
            });
        });
        k.finish()
    }

    /// CPU reference. The kernel accumulates `acc + v * x[c]` in CSR order,
    /// fused; replicate exactly.
    fn reference(&self, m: &Csr, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; m.rows()];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for e in m.row_offsets[i]..m.row_offsets[i + 1] {
                let e = e as usize;
                acc = m.vals[e].mul_add(x[m.cols[e] as usize], acc);
            }
            *yi = acc;
        }
        y
    }

    /// Vector-kernel reference: per-lane partials reduced in tree order.
    fn reference_vector(&self, m: &Csr, x: &[f32]) -> Vec<f32> {
        let w = VWARP as usize;
        let mut y = vec![0.0f32; m.rows()];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut partials = vec![0.0f32; w];
            let (s, e) = (m.row_offsets[i] as usize, m.row_offsets[i + 1] as usize);
            for (idx, e) in (s..e).enumerate() {
                let lane = idx % w;
                partials[lane] = m.vals[e].mul_add(x[m.cols[e] as usize], partials[lane]);
            }
            let mut stride = w / 2;
            while stride > 0 {
                for l in 0..stride {
                    partials[l] += partials[l + stride];
                }
                stride /= 2;
            }
            *yi = partials[0];
        }
        y
    }
}

impl Benchmark for Spmv {
    fn name(&self) -> &'static str {
        "SPMV"
    }

    fn metric(&self) -> Metric {
        Metric::GFlopsPerSec
    }

    fn run(&self, gpu: &mut dyn Gpu) -> Result<RunOutput, RtError> {
        let use_texture = self.use_texture.unwrap_or(gpu.api() == Api::Cuda);
        let m = Csr::random(self.rows, self.nnz_per_row, 0x59 + self.rows as u64);
        let mut r = rng(0x5E);
        let x: Vec<f32> = (0..self.rows)
            .map(|_| r.gen_range(1..32) as f32 / 32.0)
            .collect();
        let def = match self.variant {
            SpmvVariant::Scalar => self.kernel_scalar(use_texture),
            SpmvVariant::Vector => self.kernel_vector(use_texture),
        };
        let h = gpu.build(&def)?;
        let d_vals = gpu.malloc((m.nnz() * 4) as u64)?;
        let d_cols = gpu.malloc((m.nnz() * 4) as u64)?;
        let d_off = gpu.malloc((m.row_offsets.len() * 4) as u64)?;
        let d_x = gpu.malloc((self.rows * 4) as u64)?;
        let d_y = gpu.malloc((self.rows * 4) as u64)?;
        gpu.h2d_t(d_vals, &m.vals)?;
        gpu.h2d_t(d_cols, &m.cols)?;
        gpu.h2d_t(d_off, &m.row_offsets)?;
        gpu.h2d_t(d_x, &x)?;
        let block = 128u32;
        let grid = match self.variant {
            SpmvVariant::Scalar => (self.rows as u32).div_ceil(block),
            SpmvVariant::Vector => (self.rows as u32).div_ceil(block / VWARP),
        };
        let mut cfg = LaunchConfig::new(grid, block)
            .arg_ptr(d_vals)
            .arg_ptr(d_cols)
            .arg_ptr(d_off)
            .arg_ptr(d_x)
            .arg_ptr(d_y)
            .arg_i32(self.rows as i32);
        if use_texture {
            cfg = cfg.bind_texture(d_x, self.rows as u64);
        }
        let win = Window::open(gpu);
        let launch = gpu.launch(h, &cfg)?;
        let (wall_ns, kernel_ns, launches) = win.close(gpu);
        let got = gpu.d2h_t::<f32>(d_y, self.rows)?;
        let want = match self.variant {
            SpmvVariant::Scalar => self.reference(&m, &x),
            SpmvVariant::Vector => self.reference_vector(&m, &x),
        };
        let verify = verdict(check_f32(&got, &want, 1e-4));
        let gflops = 2.0 * m.nnz() as f64 / kernel_ns;
        Ok(RunOutput {
            value: gflops,
            metric: Metric::GFlopsPerSec,
            verify,
            kernel_ns,
            wall_ns,
            launches,
            stats: launch.report.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_runtime::{Cuda, OpenCl};
    use gpucmp_sim::{DeviceKind, DeviceSpec};

    #[test]
    fn scalar_spmv_verifies_both_apis_and_texture_modes() {
        let mut cuda = Cuda::new(DeviceSpec::gtx280()).unwrap();
        for tex in [true, false] {
            let b = Spmv::new(Scale::Quick).with_texture(tex);
            let r = b.run(&mut cuda).unwrap();
            assert!(r.verify.is_pass(), "tex={tex}: {:?}", r.verify);
        }
        let mut ocl = OpenCl::create_any(DeviceSpec::gtx480());
        assert!(Spmv::new(Scale::Quick)
            .run(&mut ocl)
            .unwrap()
            .verify
            .is_pass());
    }

    #[test]
    fn vector_spmv_verifies() {
        let b = Spmv::new(Scale::Quick).vector();
        let mut cuda = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let r = b.run(&mut cuda).unwrap();
        assert!(r.verify.is_pass(), "{:?}", r.verify);
        // portable on 64-wide wavefronts too (barrier-based reduction)
        let mut ati = OpenCl::create_any(DeviceSpec::hd5870());
        assert!(b.run(&mut ati).unwrap().verify.is_pass());
    }

    #[test]
    fn texture_helps_spmv() {
        // Fig. 4: SPMV without texture drops to ~65% (GTX280) / ~44%
        // (GTX480).
        for dev in [DeviceSpec::gtx280(), DeviceSpec::gtx480()] {
            let mut g = Cuda::new(dev.clone()).unwrap();
            let p_with = Spmv::new(Scale::Paper)
                .with_texture(true)
                .run(&mut g)
                .unwrap()
                .value;
            let p_without = Spmv::new(Scale::Paper)
                .with_texture(false)
                .run(&mut g)
                .unwrap()
                .value;
            let frac = p_without / p_with;
            assert!((0.3..0.95).contains(&frac), "{}: fraction {frac}", dev.name);
        }
    }

    #[test]
    fn warp_oriented_variant_collapses_on_cpu() {
        // Section V: scalar 3.805 GFlops vs vector 0.1247 GFlops on the
        // Intel920 — a ~30x collapse from per-work-item overhead.
        let mut cpu = OpenCl::create(DeviceSpec::intel920(), DeviceKind::Cpu).unwrap();
        let scalar = Spmv::new(Scale::Quick).run(&mut cpu).unwrap();
        let vector = Spmv::new(Scale::Quick).vector().run(&mut cpu).unwrap();
        assert!(scalar.verify.is_pass() && vector.verify.is_pass());
        assert!(
            scalar.value > vector.value * 4.0,
            "scalar {} vs vector {}",
            scalar.value,
            vector.value
        );
    }
}
