//! Reduce — SHOC's array reduction (paper Table II, GB/s).
//!
//! Two launches: a grid-stride per-thread accumulation followed by a
//! shared-memory tree per block, then a single-block pass over the block
//! partials. The input is small integers stored as f32 so the tree and the
//! linear CPU reference agree bit-exactly.

use crate::common::{check_f32, rng, verdict, Benchmark, Metric, RunOutput, Scale, Window};
use gpucmp_compiler::{global_id_x, global_size_x, ld_global, Builtin, DslKernel, Expr, KernelDef};
use gpucmp_ptx::Ty;
use gpucmp_runtime::{Gpu, GpuExt, RtError};
use gpucmp_sim::LaunchConfig;
use rand::Rng;

/// Reduce benchmark.
#[derive(Clone, Debug)]
pub struct Reduce {
    /// Elements to reduce.
    pub n: u32,
    /// Thread blocks of the first pass.
    pub blocks: u32,
    /// Threads per block (power of two).
    pub block_size: u32,
}

impl Reduce {
    /// Construct with the given scale.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Reduce {
                n: 1 << 14,
                blocks: 16,
                block_size: 128,
            },
            Scale::Paper => Reduce {
                n: 1 << 21,
                blocks: 120,
                block_size: 256,
            },
        }
    }

    fn kernel(&self) -> KernelDef {
        let mut k = DslKernel::new("reduce");
        let input = k.param_ptr("input");
        let output = k.param_ptr("output");
        let n = k.param("n", Ty::S32);
        let sm = k.shared_array(Ty::F32, self.block_size);
        let tid = k.let_(Ty::S32, Expr::from(Builtin::TidX));
        let i = k.let_(Ty::S32, global_id_x());
        let gsize = k.let_(Ty::S32, global_size_x());
        let acc = k.let_(Ty::F32, 0.0f32);
        k.while_(Expr::from(i).lt(n), |k| {
            k.assign(acc, Expr::from(acc) + ld_global(input.clone(), i, Ty::F32));
            k.assign(i, Expr::from(i) + gsize);
        });
        k.st_shared(sm, tid, acc);
        k.barrier();
        let s = k.let_(Ty::S32, (self.block_size / 2) as i32);
        k.while_(Expr::from(s).gt(0i32), |k| {
            k.if_(Expr::from(tid).lt(s), |k| {
                k.st_shared(sm, tid, sm.ld(tid) + sm.ld(Expr::from(tid) + s));
            });
            k.barrier();
            k.assign(s, Expr::from(s) >> 1i32);
        });
        k.if_(Expr::from(tid).eq_(0i32), |k| {
            k.st_global(output, Expr::from(Builtin::CtaidX), Ty::F32, sm.ld(0i64));
        });
        k.finish()
    }
}

impl Benchmark for Reduce {
    fn name(&self) -> &'static str {
        "Reduce"
    }

    fn metric(&self) -> Metric {
        Metric::GBPerSec
    }

    fn run(&self, gpu: &mut dyn Gpu) -> Result<RunOutput, RtError> {
        let n = self.n as usize;
        let def = self.kernel();
        let h = gpu.build(&def)?;
        let input = gpu.alloc::<f32>(n)?;
        let partials = gpu.alloc::<f32>(self.blocks as usize)?;
        let result = gpu.alloc::<f32>((self.blocks as usize).max(1))?;
        // small integers as f32: all tree orders sum exactly
        let mut r = rng(0xEDCE);
        let data: Vec<f32> = (0..n).map(|_| r.gen_range(0..8) as f32).collect();
        gpu.h2d_buf(&input, &data)?;
        let cfg1 = LaunchConfig::builder()
            .grid(self.blocks)
            .block(self.block_size)
            .arg_ptr(input)
            .arg_ptr(partials)
            .arg_i32(n as i32)
            .build();
        let cfg2 = LaunchConfig::builder()
            .grid(1u32)
            .block(self.block_size)
            .arg_ptr(partials)
            .arg_ptr(result)
            .arg_i32(self.blocks as i32)
            .build();
        let w = Window::open(gpu);
        let l1 = gpu.launch(h, &cfg1)?;
        let l2 = gpu.launch(h, &cfg2)?;
        let (wall_ns, kernel_ns, launches) = w.close(gpu);
        let got = gpu.d2h_t::<f32>(result.ptr(), 1)?;
        let want: f32 = data.iter().sum();
        let verify = verdict(check_f32(&got, &[want], 0.0));
        let mut stats = l1.report.stats;
        stats.merge(&l2.report.stats);
        let bytes = n as u64 * 4;
        Ok(RunOutput {
            value: bytes as f64 / kernel_ns,
            metric: Metric::GBPerSec,
            verify,
            kernel_ns,
            wall_ns,
            launches,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_runtime::{Cuda, OpenCl};
    use gpucmp_sim::{DeviceKind, DeviceSpec};

    #[test]
    fn reduce_is_exact_on_all_devices() {
        let b = Reduce::new(Scale::Quick);
        let mut cuda = Cuda::new(DeviceSpec::gtx280()).unwrap();
        assert!(b.run(&mut cuda).unwrap().verify.is_pass());
        let mut ocl = OpenCl::create_any(DeviceSpec::gtx480());
        assert!(b.run(&mut ocl).unwrap().verify.is_pass());
        let mut ati = OpenCl::create_any(DeviceSpec::hd5870());
        assert!(b.run(&mut ati).unwrap().verify.is_pass());
        let mut cpu = OpenCl::create(DeviceSpec::intel920(), DeviceKind::Cpu).unwrap();
        assert!(b.run(&mut cpu).unwrap().verify.is_pass());
    }

    #[test]
    fn two_launches_counted() {
        let b = Reduce::new(Scale::Quick);
        let mut cuda = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let r = b.run(&mut cuda).unwrap();
        assert_eq!(r.launches, 2);
        assert!(r.stats.barriers > 0);
    }

    #[test]
    fn bandwidth_close_between_apis() {
        let b = Reduce::new(Scale::Paper);
        let mut cuda = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let rc = b.run(&mut cuda).unwrap();
        let mut ocl = OpenCl::create_any(DeviceSpec::gtx480());
        let ro = b.run(&mut ocl).unwrap();
        let pr = ro.value / rc.value;
        assert!((0.8..1.25).contains(&pr), "PR = {pr}");
    }
}
