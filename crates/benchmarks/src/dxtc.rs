//! DXTC — DXT1 texture compression (NVIDIA SDK; paper Table II,
//! MPixels/s).
//!
//! One thread compresses one 4x4 pixel block: bounding-box colour
//! endpoints, the 4-entry palette, and a 2-bit best-fit index per pixel.
//! All integer math, so verification is exact. The sixteen pixels are held
//! in registers, which makes this one of the suite's register-hungriest
//! kernels — it is one of the four that exhaust the Cell/BE SPE local
//! store (`CL_OUT_OF_RESOURCES`, Table VI "ABT").

use crate::common::{check_u32, rand_u32, verdict, Benchmark, Metric, RunOutput, Scale, Window};
use gpucmp_compiler::{global_id_x, ld_global, select, DslKernel, Expr, KernelDef, Var};
use gpucmp_ptx::Ty;
use gpucmp_runtime::{Gpu, GpuExt, RtError};
use gpucmp_sim::LaunchConfig;

/// DXTC benchmark. Image is `width x height` RGBA pixels (multiples of 4;
/// `width * height / 16` blocks).
#[derive(Clone, Debug)]
pub struct Dxtc {
    /// Image width.
    pub width: u32,
    /// Image height.
    pub height: u32,
}

impl Dxtc {
    /// Construct with the given scale.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Dxtc {
                width: 64,
                height: 64,
            },
            Scale::Paper => Dxtc {
                width: 512,
                height: 256,
            },
        }
    }

    /// Pixel blocks.
    fn blocks(&self) -> u32 {
        self.width * self.height / 16
    }

    /// Build the kernel. Public for the Table VI resource analysis.
    pub fn kernel(&self) -> KernelDef {
        let mut k = DslKernel::new("dxt1_compress");
        let pixels = k.param_ptr("pixels"); // RGBA u32, block-linearised
        let out = k.param_ptr("out"); // 2 u32 words per block
        let nblocks = k.param("nblocks", Ty::S32);
        let bid = k.let_(Ty::S32, global_id_x());
        k.if_(Expr::from(bid).lt(nblocks), |k| {
            // load the 16 pixels into registers
            let px: Vec<Var> = (0..16)
                .map(|i| {
                    k.let_(
                        Ty::U32,
                        ld_global(pixels.clone(), Expr::from(bid) * 16i32 + i, Ty::U32),
                    )
                })
                .collect();
            let chan = |p: Var, shift: i32| -> Expr { (Expr::from(p) >> shift) & 255i32 };
            // bounding box per channel
            let mut mins: Vec<Var> = Vec::new();
            let mut maxs: Vec<Var> = Vec::new();
            for (c, shift) in [(0usize, 0i32), (1, 8), (2, 16)] {
                let _ = c;
                let mn = k.let_(Ty::U32, chan(px[0], shift));
                let mx = k.let_(Ty::U32, chan(px[0], shift));
                for p in &px[1..] {
                    k.assign(mn, Expr::from(mn).min_(chan(*p, shift)));
                    k.assign(mx, Expr::from(mx).max_(chan(*p, shift)));
                }
                mins.push(mn);
                maxs.push(mx);
            }
            // 565 endpoints: c0 from the maxima, c1 from the minima
            let to565 = |r: Expr, g: Expr, b: Expr| -> Expr {
                ((r >> 3i32) << 11i32) | ((g >> 2i32) << 5i32) | (b >> 3i32)
            };
            let c0 = k.let_(
                Ty::U32,
                to565(maxs[0].into(), maxs[1].into(), maxs[2].into()),
            );
            let c1 = k.let_(
                Ty::U32,
                to565(mins[0].into(), mins[1].into(), mins[2].into()),
            );
            // DXT1 4-colour mode needs c0 > c1; when the block is a single
            // colour the palette degenerates and all indices are zero.
            // palette in 8-bit space: p0 = max, p1 = min, p2 = (2 p0 + p1)/3,
            // p3 = (p0 + 2 p1)/3 per channel
            let mut pal: Vec<[Var; 3]> = Vec::new();
            for e in 0..4usize {
                let mut entry = Vec::new();
                for c in 0..3usize {
                    let hi: Expr = maxs[c].into();
                    let lo: Expr = mins[c].into();
                    let v = match e {
                        0 => hi,
                        1 => lo,
                        2 => (hi * 2i32 + lo) / 3i32,
                        _ => (hi + lo * 2i32) / 3i32,
                    };
                    entry.push(k.let_(Ty::U32, v));
                }
                pal.push([entry[0], entry[1], entry[2]]);
            }
            // best index per pixel by squared distance
            let indices = k.let_(Ty::U32, 0u32);
            for (i, p) in px.iter().enumerate() {
                let r = k.let_(Ty::S32, chan(*p, 0).cast(Ty::S32));
                let g = k.let_(Ty::S32, chan(*p, 8).cast(Ty::S32));
                let b = k.let_(Ty::S32, chan(*p, 16).cast(Ty::S32));
                let best_d = k.let_(Ty::S32, i32::MAX);
                let best_i = k.let_(Ty::S32, 0i32);
                for (e, entry) in pal.iter().enumerate() {
                    let dr = k.let_(Ty::S32, Expr::from(r) - Expr::from(entry[0]).cast(Ty::S32));
                    let dg = k.let_(Ty::S32, Expr::from(g) - Expr::from(entry[1]).cast(Ty::S32));
                    let db = k.let_(Ty::S32, Expr::from(b) - Expr::from(entry[2]).cast(Ty::S32));
                    let d = k.let_(
                        Ty::S32,
                        Expr::from(dr) * dr + Expr::from(dg) * dg + Expr::from(db) * db,
                    );
                    let closer = Expr::from(d).lt(best_d);
                    k.assign(best_i, select(closer.clone(), e as i32, best_i));
                    k.assign(best_d, select(closer, d, best_d));
                }
                k.assign(
                    indices,
                    Expr::from(indices) | (Expr::from(best_i).cast(Ty::U32) << (2 * i as i32)),
                );
            }
            k.st_global(
                out.clone(),
                Expr::from(bid) * 2i32,
                Ty::U32,
                Expr::from(c0) | (Expr::from(c1) << 16i32),
            );
            k.st_global(out.clone(), Expr::from(bid) * 2i32 + 1i32, Ty::U32, indices);
        });
        k.finish()
    }

    /// Exact CPU reference.
    pub fn reference(&self, pixels: &[u32]) -> Vec<u32> {
        let nblocks = self.blocks() as usize;
        let mut out = vec![0u32; nblocks * 2];
        for b in 0..nblocks {
            let px = &pixels[b * 16..b * 16 + 16];
            let chan = |p: u32, s: u32| (p >> s) & 255;
            let mut mins = [255u32; 3];
            let mut maxs = [0u32; 3];
            for &p in px {
                for (c, s) in [(0usize, 0u32), (1, 8), (2, 16)] {
                    mins[c] = mins[c].min(chan(p, s));
                    maxs[c] = maxs[c].max(chan(p, s));
                }
            }
            let to565 = |r: u32, g: u32, b: u32| ((r >> 3) << 11) | ((g >> 2) << 5) | (b >> 3);
            let c0 = to565(maxs[0], maxs[1], maxs[2]);
            let c1 = to565(mins[0], mins[1], mins[2]);
            let mut pal = [[0u32; 3]; 4];
            for c in 0..3 {
                pal[0][c] = maxs[c];
                pal[1][c] = mins[c];
                pal[2][c] = (maxs[c] * 2 + mins[c]) / 3;
                pal[3][c] = (maxs[c] + mins[c] * 2) / 3;
            }
            let mut indices = 0u32;
            for (i, &p) in px.iter().enumerate() {
                let (r, g, bl) = (chan(p, 0) as i32, chan(p, 8) as i32, chan(p, 16) as i32);
                let mut best_d = i32::MAX;
                let mut best_i = 0i32;
                for (e, entry) in pal.iter().enumerate() {
                    let dr = r - entry[0] as i32;
                    let dg = g - entry[1] as i32;
                    let db = bl - entry[2] as i32;
                    let d = dr * dr + dg * dg + db * db;
                    if d < best_d {
                        best_i = e as i32;
                        best_d = d;
                    }
                }
                indices |= (best_i as u32) << (2 * i);
            }
            out[b * 2] = c0 | (c1 << 16);
            out[b * 2 + 1] = indices;
        }
        out
    }
}

impl Benchmark for Dxtc {
    fn name(&self) -> &'static str {
        "DXTC"
    }

    fn metric(&self) -> Metric {
        Metric::MPixelsPerSec
    }

    fn run(&self, gpu: &mut dyn Gpu) -> Result<RunOutput, RtError> {
        let nblocks = self.blocks();
        let npix = (self.width * self.height) as usize;
        let def = self.kernel();
        let h = gpu.build(&def)?;
        let d_px = gpu.malloc((npix * 4) as u64)?;
        let d_out = gpu.malloc((nblocks as usize * 8) as u64)?;
        let pixels: Vec<u32> = rand_u32(0xD8, npix)
            .iter()
            .map(|v| v & 0x00ff_ffff)
            .collect();
        gpu.h2d_t(d_px, &pixels)?;
        let block = 256u32;
        let cfg = LaunchConfig::new(nblocks.div_ceil(block), block)
            .arg_ptr(d_px)
            .arg_ptr(d_out)
            .arg_i32(nblocks as i32);
        let win = Window::open(gpu);
        let launch = gpu.launch(h, &cfg)?;
        let (wall_ns, kernel_ns, launches) = win.close(gpu);
        let got = gpu.d2h_t::<u32>(d_out, nblocks as usize * 2)?;
        let want = self.reference(&pixels);
        let verify = verdict(check_u32(&got, &want));
        Ok(RunOutput {
            value: npix as f64 / (kernel_ns * 1e-3), // pixels/µs = MPixels/s
            metric: Metric::MPixelsPerSec,
            verify,
            kernel_ns,
            wall_ns,
            launches,
            stats: launch.report.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_runtime::{Cuda, OpenCl};
    use gpucmp_sim::DeviceSpec;

    #[test]
    fn dxtc_is_exact_on_both_apis() {
        let b = Dxtc::new(Scale::Quick);
        let mut cuda = Cuda::new(DeviceSpec::gtx280()).unwrap();
        let r = b.run(&mut cuda).unwrap();
        assert!(r.verify.is_pass(), "{:?}", r.verify);
        let mut ocl = OpenCl::create_any(DeviceSpec::gtx480());
        assert!(b.run(&mut ocl).unwrap().verify.is_pass());
    }

    #[test]
    fn dxtc_is_register_hungry() {
        // the 16 register-resident pixels + palette must create real
        // pressure: this kernel spills under the front-end budgets
        let def = Dxtc::new(Scale::Quick).kernel();
        let c = gpucmp_compiler::compile(&def, gpucmp_compiler::Api::Cuda, 124).unwrap();
        assert!(
            c.exec.phys_regs >= 30 || c.exec.local_bytes > 0,
            "regs={} local={}",
            c.exec.phys_regs,
            c.exec.local_bytes
        );
    }

    #[test]
    fn solid_color_block_compresses_to_single_index() {
        let b = Dxtc {
            width: 4,
            height: 4,
        };
        let pixels = vec![0x0080ff40u32 & 0xffffff; 16];
        let out = b.reference(&pixels);
        assert_eq!(out[1], 0, "all indices select palette entry 0");
    }
}
