//! RdxS — LSD radix sort with 4-bit digits (NVIDIA SDK, after Satish,
//! Harris & Garland; paper Table II, MElements/s).
//!
//! Per pass: a per-block digit histogram, a single-block exclusive scan of
//! the (digit-major) histogram matrix, and a scatter whose *local ranking*
//! step is **warp-synchronous**: each warp owns 16 shared-memory counters
//! and serialises its lanes with a source-level `tid % 32` — while the
//! counter base comes from the hardware `%warpid`. On 32-wide NVIDIA
//! hardware the two agree and the sort is correct; on 64-wide wavefront
//! devices (HD5870, AMD APP on the Intel920) *two* 32-lane halves share
//! one `%warpid` and collide in the counters — exactly the paper's
//! "only one half warp of threads are able to map keys into buckets"
//! failure, reported as "FL" in Table VI.

use crate::common::{check_u32, rand_u32, verdict, Benchmark, Metric, RunOutput, Scale, Window};
use gpucmp_compiler::{global_id_x, ld_global, Builtin, DslKernel, Expr, KernelDef};
use gpucmp_ptx::{AtomOp, Space, Ty};
use gpucmp_runtime::{Gpu, GpuExt, RtError};
use gpucmp_sim::{ExecStats, LaunchConfig};

/// Keys per block (one per thread).
const BLOCK: u32 = 256;
/// Digit width in bits.
const DIGIT_BITS: u32 = 4;
/// Buckets per digit.
const BUCKETS: u32 = 1 << DIGIT_BITS;
/// The *source-level* warp size the SDK code bakes in.
const WARP_SIZE_SRC: i32 = 32;

/// RdxS benchmark. `n` must be a multiple of the 256-key block with at most 512
/// blocks (the histogram scan runs in one block).
#[derive(Clone, Debug)]
pub struct Rdxs {
    /// Keys to sort (32-bit).
    pub n: u32,
}

impl Rdxs {
    /// Construct with the given scale.
    pub fn new(scale: Scale) -> Self {
        Rdxs {
            n: match scale {
                Scale::Quick => 2 * 1024,
                Scale::Paper => 8 * 1024, // 32 blocks: histogram fits the one-block scan
            },
        }
    }

    /// Kernel 1: per-block digit histogram into
    /// `hist[digit * nblocks + block]` (digit-major for the scan).
    fn kernel_hist(&self) -> KernelDef {
        let mut k = DslKernel::new("radix_hist");
        let keys = k.param_ptr("keys");
        let hist = k.param_ptr("hist");
        let shift = k.param("shift", Ty::S32);
        let nblocks = k.param("nblocks", Ty::S32);
        let counters = k.shared_array(Ty::U32, BUCKETS);
        let tid = k.let_(Ty::S32, Expr::from(Builtin::TidX));
        k.if_(Expr::from(tid).lt(BUCKETS as i32), |k| {
            k.st_shared(counters, tid, 0u32);
        });
        k.barrier();
        let key = k.let_(Ty::U32, ld_global(keys.clone(), global_id_x(), Ty::U32));
        let digit = k.let_(
            Ty::U32,
            (Expr::from(key) >> shift.clone()) & (BUCKETS - 1) as i32,
        );
        k.atomic(
            AtomOp::Add,
            Space::Shared,
            Expr::ImmI(counters.offset as i64),
            Expr::from(digit).cast(Ty::S32),
            Ty::U32,
            1u32,
        );
        k.barrier();
        k.if_(Expr::from(tid).lt(BUCKETS as i32), |k| {
            k.st_global(
                hist.clone(),
                Expr::from(tid) * nblocks.clone() + Expr::from(Builtin::CtaidX),
                Ty::U32,
                counters.ld(tid),
            );
        });
        k.finish()
    }

    /// Kernel 2: single-block exclusive scan of the histogram matrix
    /// (BUCKETS * nblocks entries, padded to 2*BLOCK).
    fn kernel_scan(&self) -> KernelDef {
        let elems = (2 * BLOCK) as i32;
        let mut k = DslKernel::new("radix_scan");
        let data = k.param_ptr("data");
        let sm = k.shared_array(Ty::U32, 2 * BLOCK);
        let tid = k.let_(Ty::S32, Expr::from(Builtin::TidX));
        for half in 0..2i32 {
            let i = Expr::from(tid) * 2i32 + half;
            k.st_shared(sm, i.clone(), ld_global(data.clone(), i, Ty::U32));
        }
        let offset = k.let_(Ty::S32, 1i32);
        let d = k.let_(Ty::S32, BLOCK as i32);
        k.while_(Expr::from(d).gt(0i32), |k| {
            k.barrier();
            k.if_(Expr::from(tid).lt(d), |k| {
                let ai = k.let_(
                    Ty::S32,
                    Expr::from(offset) * (Expr::from(tid) * 2i32 + 1i32) - 1i32,
                );
                let bi = k.let_(
                    Ty::S32,
                    Expr::from(offset) * (Expr::from(tid) * 2i32 + 2i32) - 1i32,
                );
                k.st_shared(sm, bi, sm.ld(bi) + sm.ld(ai));
            });
            k.assign(offset, Expr::from(offset) * 2i32);
            k.assign(d, Expr::from(d) >> 1i32);
        });
        k.barrier();
        k.if_(Expr::from(tid).eq_(0i32), |k| {
            k.st_shared(sm, elems - 1, 0u32);
        });
        let d2 = k.let_(Ty::S32, 1i32);
        k.while_(Expr::from(d2).lt(elems), |k| {
            k.assign(offset, Expr::from(offset) >> 1i32);
            k.barrier();
            k.if_(Expr::from(tid).lt(d2), |k| {
                let ai = k.let_(
                    Ty::S32,
                    Expr::from(offset) * (Expr::from(tid) * 2i32 + 1i32) - 1i32,
                );
                let bi = k.let_(
                    Ty::S32,
                    Expr::from(offset) * (Expr::from(tid) * 2i32 + 2i32) - 1i32,
                );
                let t = k.let_(Ty::U32, sm.ld(ai));
                k.st_shared(sm, ai, sm.ld(bi));
                k.st_shared(sm, bi, sm.ld(bi) + t);
            });
            k.assign(d2, Expr::from(d2) * 2i32);
        });
        k.barrier();
        for half in 0..2i32 {
            let i = Expr::from(tid) * 2i32 + half;
            k.st_global(data.clone(), i.clone(), Ty::U32, sm.ld(i));
        }
        k.finish()
    }

    /// Kernel 3: scatter with the warp-synchronous local ranking.
    fn kernel_scatter(&self) -> KernelDef {
        let warps_assumed = BLOCK / WARP_SIZE_SRC as u32; // 8
        let mut k = DslKernel::new("radix_scatter");
        let keys_in = k.param_ptr("keys_in");
        let keys_out = k.param_ptr("keys_out");
        let scanned = k.param_ptr("scanned_hist");
        let shift = k.param("shift", Ty::S32);
        let nblocks = k.param("nblocks", Ty::S32);
        // per-warp digit counters, sized by the source's warp count
        let counters = k.shared_array(Ty::U32, warps_assumed * BUCKETS);
        // per-(warp,digit) exclusive offsets within the block
        let warp_bases = k.shared_array(Ty::U32, warps_assumed * BUCKETS);
        let tid = k.let_(Ty::S32, Expr::from(Builtin::TidX));
        let lane32 = k.let_(Ty::S32, Expr::from(tid) % WARP_SIZE_SRC); // source-level 32
                                                                       // THE BUG THE PAPER DESCRIBES: the counter base uses the *hardware*
                                                                       // warp id while the serialisation below assumes 32-wide warps.
        let hw_warp = k.let_(Ty::S32, Expr::from(Builtin::WarpId).cast(Ty::S32));
        let key = k.let_(Ty::U32, ld_global(keys_in.clone(), global_id_x(), Ty::U32));
        let digit = k.let_(
            Ty::S32,
            ((Expr::from(key) >> shift.clone()) & (BUCKETS - 1) as i32).cast(Ty::S32),
        );
        // zero counters
        k.if_(Expr::from(tid).lt((warps_assumed * BUCKETS) as i32), |k| {
            k.st_shared(counters, tid, 0u32);
        });
        k.barrier();
        // warp-synchronous serial ranking: lane l of each (assumed 32-wide)
        // warp takes its turn; no barrier needed on 32-wide hardware
        let rank = k.let_(Ty::U32, 0u32);
        for l in 0..WARP_SIZE_SRC {
            k.if_(Expr::from(lane32).eq_(l), |k| {
                let idx = Expr::from(hw_warp) * BUCKETS as i32 + digit;
                k.assign(rank, counters.ld(idx.clone()));
                k.st_shared(counters, idx, Expr::from(rank) + 1u32);
            });
        }
        k.barrier();
        // exclusive scan of the warp counters per digit (thread d <16 scans
        // the assumed warps)
        k.if_(Expr::from(tid).lt(BUCKETS as i32), |k| {
            let acc = k.let_(Ty::U32, 0u32);
            for w in 0..warps_assumed as i32 {
                let idx = Expr::ImmI((w * BUCKETS as i32) as i64) + Expr::from(tid);
                k.st_shared(warp_bases, idx.clone(), acc);
                k.assign(acc, Expr::from(acc) + counters.ld(idx));
            }
        });
        k.barrier();
        // global position: scanned digit base + this block's preceding
        // blocks' digit counts were folded into `scanned` (digit-major) +
        // in-block warp base + in-warp rank
        let digit_base = k.let_(
            Ty::U32,
            ld_global(
                scanned.clone(),
                Expr::from(digit) * nblocks.clone() + Expr::from(Builtin::CtaidX),
                Ty::U32,
            ),
        );
        let warp_base = k.let_(
            Ty::U32,
            warp_bases.ld(Expr::from(hw_warp) * BUCKETS as i32 + digit),
        );
        let pos = k.let_(
            Ty::U32,
            Expr::from(digit_base) + Expr::from(warp_base) + rank,
        );
        k.st_global(
            keys_out.clone(),
            Expr::from(pos).cast(Ty::S32),
            Ty::U32,
            key,
        );
        k.finish()
    }

    /// CPU reference: stable LSD radix sort equals a full sort for u32.
    pub fn reference(data: &[u32]) -> Vec<u32> {
        let mut v = data.to_vec();
        v.sort_unstable();
        v
    }
}

impl Benchmark for Rdxs {
    fn name(&self) -> &'static str {
        "RdxS"
    }

    fn metric(&self) -> Metric {
        Metric::MElementsPerSec
    }

    fn run(&self, gpu: &mut dyn Gpu) -> Result<RunOutput, RtError> {
        let n = self.n;
        assert_eq!(n % BLOCK, 0);
        let nblocks = n / BLOCK;
        assert!(
            BUCKETS * nblocks <= 2 * BLOCK,
            "histogram must fit one scan block"
        );
        let k_hist = gpu.build(&self.kernel_hist())?;
        let k_scan = gpu.build(&self.kernel_scan())?;
        let k_scat = gpu.build(&self.kernel_scatter())?;
        let d_a = gpu.malloc((n * 4) as u64)?;
        let d_b = gpu.malloc((n * 4) as u64)?;
        let d_hist = gpu.malloc((2 * BLOCK * 4) as u64)?;
        let data = rand_u32(0x4D5, n as usize);
        gpu.h2d_t(d_a, &data)?;
        let mut stats = ExecStats::default();
        let win = Window::open(gpu);
        let (mut src, mut dst) = (d_a, d_b);
        for pass in 0..(32 / DIGIT_BITS) {
            let shift = (pass * DIGIT_BITS) as i32;
            // zero the padded histogram
            gpu.h2d_t(d_hist, &vec![0u32; (2 * BLOCK) as usize])?;
            let cfg = LaunchConfig::new(nblocks, BLOCK)
                .arg_ptr(src)
                .arg_ptr(d_hist)
                .arg_i32(shift)
                .arg_i32(nblocks as i32);
            let l = gpu.launch(k_hist, &cfg)?;
            stats.merge(&l.report.stats);
            let cfg = LaunchConfig::new(1u32, BLOCK).arg_ptr(d_hist);
            let l = gpu.launch(k_scan, &cfg)?;
            stats.merge(&l.report.stats);
            let cfg = LaunchConfig::new(nblocks, BLOCK)
                .arg_ptr(src)
                .arg_ptr(dst)
                .arg_ptr(d_hist)
                .arg_i32(shift)
                .arg_i32(nblocks as i32);
            let l = gpu.launch(k_scat, &cfg)?;
            stats.merge(&l.report.stats);
            std::mem::swap(&mut src, &mut dst);
        }
        let (wall_ns, kernel_ns, launches) = win.close(gpu);
        let got = gpu.d2h_t::<u32>(src, n as usize)?;
        let want = Self::reference(&data);
        let verify = verdict(check_u32(&got, &want));
        Ok(RunOutput {
            value: n as f64 / (wall_ns * 1e-3),
            metric: Metric::MElementsPerSec,
            verify,
            kernel_ns,
            wall_ns,
            launches,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Verify;
    use gpucmp_runtime::{Cuda, OpenCl};
    use gpucmp_sim::{DeviceKind, DeviceSpec};

    #[test]
    fn sorts_correctly_on_warp32_hardware() {
        let b = Rdxs::new(Scale::Quick);
        let mut cuda = Cuda::new(DeviceSpec::gtx280()).unwrap();
        let r = b.run(&mut cuda).unwrap();
        assert!(r.verify.is_pass(), "{:?}", r.verify);
        let mut ocl = OpenCl::create_any(DeviceSpec::gtx480());
        let r = b.run(&mut ocl).unwrap();
        assert!(r.verify.is_pass(), "{:?}", r.verify);
    }

    #[test]
    fn fails_on_wavefront64_devices_the_papers_fl() {
        // Table VI: RdxS runs to completion but produces wrong results on
        // the HD5870 and the Intel920 (APP wavefront = 64).
        let b = Rdxs::new(Scale::Quick);
        let mut ati = OpenCl::create_any(DeviceSpec::hd5870());
        let r = b.run(&mut ati).unwrap();
        assert!(
            matches!(r.verify, Verify::Fail(_)),
            "expected FL on 64-wide wavefronts, got {:?}",
            r.verify
        );
        let mut cpu = OpenCl::create(DeviceSpec::intel920(), DeviceKind::Cpu).unwrap();
        let r = b.run(&mut cpu).unwrap();
        assert!(matches!(r.verify, Verify::Fail(_)));
    }

    #[test]
    fn many_launches_per_sort() {
        let b = Rdxs::new(Scale::Quick);
        let mut cuda = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let r = b.run(&mut cuda).unwrap();
        // 8 passes x 3 kernels
        assert_eq!(r.launches, 24);
    }
}
