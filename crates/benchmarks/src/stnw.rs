//! STNW — bitonic sorting networks (NVIDIA SDK `sortingNetworks`; paper
//! Table II, MElements/s).
//!
//! The classic three-kernel structure: a shared-memory kernel sorts each
//! 512-element tile through all network stages up to the tile size, then
//! for each larger stage a global merge kernel handles strides that cross
//! tiles and a shared-memory kernel finishes the in-tile strides. The
//! comparator direction comes from the element's *global* index, so the
//! tiles come out alternating and the full array converges to ascending
//! order. Like BFS, the many small launches make this benchmark sensitive
//! to the per-launch overhead difference between the APIs.

use crate::common::{check_u32, rand_u32, verdict, Benchmark, Metric, RunOutput, Scale, Window};
use gpucmp_compiler::{ld_global, Builtin, DslKernel, Expr, KernelDef, Var};
use gpucmp_ptx::Ty;
use gpucmp_runtime::{Gpu, GpuExt, RtError};
use gpucmp_sim::{ExecStats, LaunchConfig};

/// Threads per block; each block owns `2 * BLOCK` elements.
const BLOCK: u32 = 256;
/// Elements per tile.
const TILE: u32 = 2 * BLOCK;

/// STNW benchmark. `n` must be a power of two and a multiple of the
/// 512-element tile.
#[derive(Clone, Debug)]
pub struct Stnw {
    /// Keys to sort.
    pub n: u32,
}

impl Stnw {
    /// Construct with the given scale.
    pub fn new(scale: Scale) -> Self {
        Stnw {
            n: match scale {
                Scale::Quick => 4 * 1024,
                Scale::Paper => 64 * 1024,
            },
        }
    }

    /// Emit one compare-exchange phase on the shared tile for stride `j`
    /// of stage `k_size`, using global indices for the direction.
    fn shared_phase(
        k: &mut DslKernel,
        sm: gpucmp_compiler::SharedArray,
        base: Var,
        tid: Var,
        k_size: i64,
        j: i64,
    ) {
        k.barrier();
        // comparator t handles pair (i, i+j), i = (t/j)*2j + t%j
        let i_local = k.let_(
            Ty::S32,
            (Expr::from(tid) / j as i32) * (2 * j) as i32 + Expr::from(tid) % j as i32,
        );
        let up = k.let_(
            Ty::S32,
            gpucmp_compiler::select(
                ((Expr::from(base) + i_local) & k_size as i32).eq_(0i32),
                1i32,
                0i32,
            ),
        );
        let a = k.let_(Ty::U32, sm.ld(i_local));
        let b = k.let_(Ty::U32, sm.ld(Expr::from(i_local) + j as i32));
        // swap if (up and a > b) or (!up and a < b)
        let gt = Expr::from(a).gt(b);
        let should_asc = gpucmp_compiler::select(gt.clone(), 1i32, 0i32);
        let should_desc = gpucmp_compiler::select(Expr::from(a).lt(b), 1i32, 0i32);
        let should = k.let_(
            Ty::S32,
            gpucmp_compiler::select(Expr::from(up).ne_(0i32), should_asc, should_desc),
        );
        k.if_(Expr::from(should).ne_(0i32), |k| {
            k.st_shared(sm, i_local, b);
            k.st_shared(sm, Expr::from(i_local) + j as i32, a);
        });
    }

    /// Kernel: full network stages `k = 2 .. TILE` inside one tile.
    fn kernel_sort_shared(&self) -> KernelDef {
        let mut k = DslKernel::new("bitonic_sort_shared");
        let data = k.param_ptr("data");
        let sm = k.shared_array(Ty::U32, TILE);
        let tid = k.let_(Ty::S32, Expr::from(Builtin::TidX));
        let base = k.let_(Ty::S32, Expr::from(Builtin::CtaidX) * TILE as i32);
        k.st_shared(
            sm,
            tid,
            ld_global(data.clone(), Expr::from(base) + tid, Ty::U32),
        );
        k.st_shared(
            sm,
            Expr::from(tid) + BLOCK as i32,
            ld_global(
                data.clone(),
                Expr::from(base) + Expr::from(tid) + BLOCK as i32,
                Ty::U32,
            ),
        );
        let mut k_size = 2i64;
        while k_size <= TILE as i64 {
            let mut j = k_size / 2;
            while j > 0 {
                Self::shared_phase(&mut k, sm, base, tid, k_size, j);
                j /= 2;
            }
            k_size *= 2;
        }
        k.barrier();
        k.st_global(data.clone(), Expr::from(base) + tid, Ty::U32, sm.ld(tid));
        k.st_global(
            data,
            Expr::from(base) + Expr::from(tid) + BLOCK as i32,
            Ty::U32,
            sm.ld(Expr::from(tid) + BLOCK as i32),
        );
        k.finish()
    }

    /// Kernel: one global compare-exchange step for stage `k_size`, stride
    /// `j` (both runtime parameters; `j >= TILE/2` crosses tiles).
    fn kernel_merge_global(&self) -> KernelDef {
        let mut k = DslKernel::new("bitonic_merge_global");
        let data = k.param_ptr("data");
        let k_size = k.param("k_size", Ty::S32);
        let j = k.param("j", Ty::S32);
        let t = k.let_(
            Ty::S32,
            Expr::from(Builtin::CtaidX) * Builtin::NtidX + Builtin::TidX,
        );
        let i = k.let_(
            Ty::S32,
            (Expr::from(t) / j.clone()) * (j.clone() * 2i32) + Expr::from(t) % j.clone(),
        );
        let up = k.let_(
            Ty::S32,
            gpucmp_compiler::select((Expr::from(i) & k_size).eq_(0i32), 1i32, 0i32),
        );
        let a = k.let_(Ty::U32, ld_global(data.clone(), i, Ty::U32));
        let b = k.let_(
            Ty::U32,
            ld_global(data.clone(), Expr::from(i) + j.clone(), Ty::U32),
        );
        let should_asc = gpucmp_compiler::select(Expr::from(a).gt(b), 1i32, 0i32);
        let should_desc = gpucmp_compiler::select(Expr::from(a).lt(b), 1i32, 0i32);
        let should = k.let_(
            Ty::S32,
            gpucmp_compiler::select(Expr::from(up).ne_(0i32), should_asc, should_desc),
        );
        k.if_(Expr::from(should).ne_(0i32), |k| {
            k.st_global(data.clone(), i, Ty::U32, b);
            k.st_global(data.clone(), Expr::from(i) + j, Ty::U32, a);
        });
        k.finish()
    }

    /// Kernel: finish all in-tile strides (`j = TILE/2 .. 1`) of stage
    /// `k_size` in shared memory.
    fn kernel_merge_shared(&self) -> KernelDef {
        let mut k = DslKernel::new("bitonic_merge_shared");
        let data = k.param_ptr("data");
        let k_size_p = k.param("k_size", Ty::S32);
        let sm = k.shared_array(Ty::U32, TILE);
        let tid = k.let_(Ty::S32, Expr::from(Builtin::TidX));
        let base = k.let_(Ty::S32, Expr::from(Builtin::CtaidX) * TILE as i32);
        k.st_shared(
            sm,
            tid,
            ld_global(data.clone(), Expr::from(base) + tid, Ty::U32),
        );
        k.st_shared(
            sm,
            Expr::from(tid) + BLOCK as i32,
            ld_global(
                data.clone(),
                Expr::from(base) + Expr::from(tid) + BLOCK as i32,
                Ty::U32,
            ),
        );
        // direction is uniform per tile for k_size > TILE
        let up = k.let_(
            Ty::S32,
            gpucmp_compiler::select((Expr::from(base) & k_size_p).eq_(0i32), 1i32, 0i32),
        );
        let mut j = (TILE / 2) as i64;
        while j > 0 {
            k.barrier();
            let i_local = k.let_(
                Ty::S32,
                (Expr::from(tid) / j as i32) * (2 * j) as i32 + Expr::from(tid) % j as i32,
            );
            let a = k.let_(Ty::U32, sm.ld(i_local));
            let b = k.let_(Ty::U32, sm.ld(Expr::from(i_local) + j as i32));
            let should_asc = gpucmp_compiler::select(Expr::from(a).gt(b), 1i32, 0i32);
            let should_desc = gpucmp_compiler::select(Expr::from(a).lt(b), 1i32, 0i32);
            let should = k.let_(
                Ty::S32,
                gpucmp_compiler::select(Expr::from(up).ne_(0i32), should_asc, should_desc),
            );
            k.if_(Expr::from(should).ne_(0i32), |k| {
                k.st_shared(sm, i_local, b);
                k.st_shared(sm, Expr::from(i_local) + j as i32, a);
            });
            j /= 2;
        }
        k.barrier();
        k.st_global(data.clone(), Expr::from(base) + tid, Ty::U32, sm.ld(tid));
        k.st_global(
            data,
            Expr::from(base) + Expr::from(tid) + BLOCK as i32,
            Ty::U32,
            sm.ld(Expr::from(tid) + BLOCK as i32),
        );
        k.finish()
    }
}

impl Benchmark for Stnw {
    fn name(&self) -> &'static str {
        "STNW"
    }

    fn metric(&self) -> Metric {
        Metric::MElementsPerSec
    }

    fn run(&self, gpu: &mut dyn Gpu) -> Result<RunOutput, RtError> {
        let n = self.n;
        assert!(
            n.is_power_of_two() && n >= TILE,
            "n must be a power of two >= {TILE}"
        );
        let tiles = n / TILE;
        let sort_sh = gpu.build(&self.kernel_sort_shared())?;
        let merge_g = gpu.build(&self.kernel_merge_global())?;
        let merge_sh = gpu.build(&self.kernel_merge_shared())?;
        let d = gpu.malloc((n * 4) as u64)?;
        let data = rand_u32(0x57A7, n as usize);
        gpu.h2d_t(d, &data)?;
        let mut stats = ExecStats::default();
        let win = Window::open(gpu);
        let l = gpu.launch(sort_sh, LaunchConfig::new(tiles, BLOCK).arg_ptr(d))?;
        stats.merge(&l.report.stats);
        let mut k_size = (TILE * 2) as i64;
        while k_size <= n as i64 {
            // strides that cross tiles (j >= TILE) go through the global
            // kernel; j <= TILE/2 is finished in shared memory below
            let mut j = k_size / 2;
            while j >= TILE as i64 {
                let cfg = LaunchConfig::new(n / (2 * BLOCK), BLOCK)
                    .arg_ptr(d)
                    .arg_i32(k_size as i32)
                    .arg_i32(j as i32);
                let l = gpu.launch(merge_g, &cfg)?;
                stats.merge(&l.report.stats);
                j /= 2;
            }
            let cfg = LaunchConfig::new(tiles, BLOCK)
                .arg_ptr(d)
                .arg_i32(k_size as i32);
            let l = gpu.launch(merge_sh, &cfg)?;
            stats.merge(&l.report.stats);
            k_size *= 2;
        }
        let (wall_ns, kernel_ns, launches) = win.close(gpu);
        let got = gpu.d2h_t::<u32>(d, n as usize)?;
        let mut want = data.clone();
        want.sort_unstable();
        let verify = verdict(check_u32(&got, &want));
        Ok(RunOutput {
            value: n as f64 / (wall_ns * 1e-3),
            metric: Metric::MElementsPerSec,
            verify,
            kernel_ns,
            wall_ns,
            launches,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_runtime::{Cuda, OpenCl};
    use gpucmp_sim::DeviceSpec;

    #[test]
    fn sorts_correctly_on_both_apis() {
        let b = Stnw::new(Scale::Quick);
        let mut cuda = Cuda::new(DeviceSpec::gtx280()).unwrap();
        let r = b.run(&mut cuda).unwrap();
        assert!(r.verify.is_pass(), "{:?}", r.verify);
        assert!(r.launches > 5, "multi-stage launches, got {}", r.launches);
        let mut ocl = OpenCl::create_any(DeviceSpec::gtx480());
        assert!(b.run(&mut ocl).unwrap().verify.is_pass());
    }

    #[test]
    fn single_tile_case_sorts() {
        let b = Stnw { n: TILE };
        let mut cuda = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let r = b.run(&mut cuda).unwrap();
        assert!(r.verify.is_pass(), "{:?}", r.verify);
    }

    #[test]
    fn sorts_on_wavefront64_devices() {
        // Barrier-based network: portable to 64-wide wavefronts (unlike
        // the warp-synchronous radix sort).
        let b = Stnw::new(Scale::Quick);
        let mut ati = OpenCl::create_any(DeviceSpec::hd5870());
        assert!(b.run(&mut ati).unwrap().verify.is_pass());
    }
}
