//! MxM — tiled single-precision matrix multiplication (NVIDIA SDK
//! `matrixMul`; paper Table II, GFlops/s).

use crate::common::{check_f32, rand_f32, verdict, Benchmark, Metric, RunOutput, Scale, Window};
use gpucmp_compiler::{ld_global, Builtin, DslKernel, Expr, KernelDef, Unroll};
use gpucmp_ptx::Ty;
use gpucmp_runtime::{Gpu, GpuExt, RtError};
use gpucmp_sim::LaunchConfig;

/// Tile edge.
const TILE: u32 = 16;

/// MxM benchmark: C = A x B for square n x n matrices (n multiple of 16).
#[derive(Clone, Debug)]
pub struct MxM {
    /// Matrix edge.
    pub n: u32,
    /// Split C into two row-panels on two explicit streams so each panel's
    /// A-upload, multiply, and C-readback pipeline against the other panel
    /// (double buffering). Off by default — the paper's runs are
    /// synchronous.
    pub streams: bool,
}

impl MxM {
    /// Construct with the given scale.
    pub fn new(scale: Scale) -> Self {
        MxM {
            n: match scale {
                Scale::Quick => 64,
                Scale::Paper => 256,
            },
            streams: false,
        }
    }

    /// Toggle the two-stream row-panel pipeline.
    pub fn with_streams(mut self, on: bool) -> Self {
        self.streams = on;
        self
    }

    fn kernel(&self) -> KernelDef {
        let mut k = DslKernel::new("matrix_mul");
        let a = k.param_ptr("a");
        let b = k.param_ptr("b");
        let c = k.param_ptr("c");
        let n = k.param("n", Ty::S32);
        let a_tile = k.shared_array(Ty::F32, TILE * TILE);
        let b_tile = k.shared_array(Ty::F32, TILE * TILE);
        let tx = k.let_(Ty::S32, Expr::from(Builtin::TidX));
        let ty_ = k.let_(Ty::S32, Expr::from(Builtin::TidY));
        let col = k.let_(Ty::S32, Expr::from(Builtin::CtaidX) * TILE as i32 + tx);
        let row = k.let_(Ty::S32, Expr::from(Builtin::CtaidY) * TILE as i32 + ty_);
        let acc = k.let_(Ty::F32, 0.0f32);
        let tiles = k.let_(Ty::S32, n.clone() / TILE as i32);
        k.for_(0i32, tiles, 1, Unroll::None, |k, t| {
            k.st_shared(
                a_tile,
                Expr::from(ty_) * TILE as i32 + tx,
                ld_global(
                    a.clone(),
                    Expr::from(row) * n.clone() + t.clone() * TILE as i32 + tx,
                    Ty::F32,
                ),
            );
            k.st_shared(
                b_tile,
                Expr::from(ty_) * TILE as i32 + tx,
                ld_global(
                    b.clone(),
                    (t.clone() * TILE as i32 + ty_) * n.clone() + col,
                    Ty::F32,
                ),
            );
            k.barrier();
            k.for_(0i32, TILE as i32, 1, Unroll::Full, |k, kk| {
                k.assign(
                    acc,
                    Expr::from(acc)
                        + a_tile.ld(Expr::from(ty_) * TILE as i32 + kk.clone())
                            * b_tile.ld(kk * TILE as i32 + tx),
                );
            });
            k.barrier();
        });
        k.st_global(c, Expr::from(row) * n.clone() + col, Ty::F32, acc);
        k.finish()
    }

    /// The two-stream pipeline: C's top and bottom row-panels each get a
    /// stream carrying upload(A-panel) → multiply(panel) → readback(C-panel).
    /// B is shared, so it uploads once and the second panel's stream waits
    /// on its event; after that the engines pipeline — panel 1's kernel
    /// overlaps panel 2's upload, panel 1's readback overlaps panel 2's
    /// kernel. Same kernel, same bytes, strictly earlier completion.
    #[allow(clippy::type_complexity)]
    fn run_streamed(
        &self,
        gpu: &mut dyn Gpu,
        h: gpucmp_runtime::KernelHandle,
        (a, b, c): (
            gpucmp_runtime::Buffer<f32>,
            gpucmp_runtime::Buffer<f32>,
            gpucmp_runtime::Buffer<f32>,
        ),
        av: &[f32],
        bv: &[f32],
    ) -> Result<RunOutput, RtError> {
        let n = self.n as usize;
        let rows = n / 2;
        let elems = rows * n;
        let streams = [gpu.create_stream(), gpu.create_stream()];
        let w = Window::open(gpu);
        let b_up = gpu.enqueue_h2d_buf(streams[0], &b, bv)?;
        gpu.stream_wait_event(streams[1], b_up)?;
        let mut stats = gpucmp_sim::ExecStats::default();
        let mut panels = Vec::with_capacity(2);
        for (i, &st) in streams.iter().enumerate() {
            gpu.enqueue_h2d_t(st, a.at(i * elems), &av[i * elems..(i + 1) * elems])?;
            let cfg = LaunchConfig::builder()
                .grid((self.n / TILE, rows as u32 / TILE))
                .block((TILE, TILE))
                .arg_ptr(a.at(i * elems))
                .arg_ptr(b)
                .arg_ptr(c.at(i * elems))
                .arg_i32(self.n as i32);
            let (_, launch) = gpu.enqueue_launch(st, h, cfg)?;
            stats.merge(&launch.report.stats);
            panels.push(gpu.enqueue_d2h_t::<f32>(st, c.at(i * elems), elems)?);
        }
        gpu.device_synchronize()?;
        let (wall_ns, kernel_ns, launches) = w.close(gpu);
        let mut got = Vec::with_capacity(n * n);
        for ev in panels {
            got.extend(gpu.take_readback_t::<f32>(ev)?);
        }
        let want = self.reference(av, bv);
        let verify = verdict(check_f32(&got, &want, 1e-4));
        let flops = 2.0 * (n as f64).powi(3);
        Ok(RunOutput {
            value: flops / kernel_ns,
            metric: Metric::GFlopsPerSec,
            verify,
            kernel_ns,
            wall_ns,
            launches,
            stats,
        })
    }

    /// CPU reference with the same accumulation order and fused mul-add.
    pub fn reference(&self, a: &[f32], b: &[f32]) -> Vec<f32> {
        let n = self.n as usize;
        let mut c = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..n {
                    acc = a[i * n + kk].mul_add(b[kk * n + j], acc);
                }
                c[i * n + j] = acc;
            }
        }
        c
    }
}

impl Benchmark for MxM {
    fn name(&self) -> &'static str {
        if self.streams {
            "MxM+streams"
        } else {
            "MxM"
        }
    }

    fn metric(&self) -> Metric {
        Metric::GFlopsPerSec
    }

    fn run(&self, gpu: &mut dyn Gpu) -> Result<RunOutput, RtError> {
        let n = self.n as usize;
        let def = self.kernel();
        let h = gpu.build(&def)?;
        let a = gpu.alloc::<f32>(n * n)?;
        let b = gpu.alloc::<f32>(n * n)?;
        let c = gpu.alloc::<f32>(n * n)?;
        let av = rand_f32(0xA0, n * n, -1.0, 1.0);
        let bv = rand_f32(0xB0, n * n, -1.0, 1.0);
        if self.streams {
            return self.run_streamed(gpu, h, (a, b, c), &av, &bv);
        }
        gpu.h2d_buf(&a, &av)?;
        gpu.h2d_buf(&b, &bv)?;
        let cfg = LaunchConfig::builder()
            .grid((self.n / TILE, self.n / TILE))
            .block((TILE, TILE))
            .arg_ptr(a)
            .arg_ptr(b)
            .arg_ptr(c)
            .arg_i32(self.n as i32);
        let w = Window::open(gpu);
        let launch = gpu.launch(h, cfg)?;
        let (wall_ns, kernel_ns, launches) = w.close(gpu);
        let got = gpu.d2h_buf(&c)?;
        let want = self.reference(&av, &bv);
        let verify = verdict(check_f32(&got, &want, 1e-4));
        let flops = 2.0 * (n as f64).powi(3);
        Ok(RunOutput {
            value: flops / kernel_ns,
            metric: Metric::GFlopsPerSec,
            verify,
            kernel_ns,
            wall_ns,
            launches,
            stats: launch.report.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_runtime::{Cuda, OpenCl};
    use gpucmp_sim::DeviceSpec;

    #[test]
    fn mxm_verifies_on_both_apis() {
        let b = MxM::new(Scale::Quick);
        let mut cuda = Cuda::new(DeviceSpec::gtx280()).unwrap();
        let rc = b.run(&mut cuda).unwrap();
        assert!(rc.verify.is_pass(), "{:?}", rc.verify);
        let mut ocl = OpenCl::create_any(DeviceSpec::gtx280());
        let ro = b.run(&mut ocl).unwrap();
        assert!(ro.verify.is_pass(), "{:?}", ro.verify);
        assert!(rc.value > 0.0 && ro.value > 0.0);
    }

    #[test]
    fn shared_memory_and_barriers_used() {
        let b = MxM::new(Scale::Quick);
        let mut cuda = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let r = b.run(&mut cuda).unwrap();
        assert!(r.stats.shared_cycles > 0);
        // 2 barriers per tile iteration
        assert!(r.stats.barriers > 0);
    }

    #[test]
    fn streamed_pipeline_verifies_and_finishes_earlier() {
        let sync_b = MxM::new(Scale::Paper);
        let stream_b = sync_b.clone().with_streams(true);
        let mut g1 = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let r_sync = sync_b.run(&mut g1).unwrap();
        let t_sync = g1.now_ns();
        let mut g2 = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let r_stream = stream_b.run(&mut g2).unwrap();
        let t_stream = g2.now_ns();
        assert!(r_stream.verify.is_pass(), "{:?}", r_stream.verify);
        assert!(r_sync.verify.is_pass());
        // one launch per row-panel instead of one for the whole matrix
        assert_eq!(r_stream.launches, r_sync.launches + 1);
        // same bytes, same kernels — but the panels pipeline, so the
        // session's virtual clock ends strictly earlier
        assert!(
            t_stream < t_sync,
            "streamed end {t_stream} ns should beat sync end {t_sync} ns"
        );
        // OpenCL takes the same path
        let mut ocl = OpenCl::create_any(DeviceSpec::gtx480());
        assert!(stream_b.run(&mut ocl).unwrap().verify.is_pass());
    }

    #[test]
    fn similar_performance_between_apis() {
        let b = MxM::new(Scale::Paper);
        let mut cuda = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let rc = b.run(&mut cuda).unwrap();
        let mut ocl = OpenCl::create_any(DeviceSpec::gtx480());
        let ro = b.run(&mut ocl).unwrap();
        let pr = ro.value / rc.value;
        assert!((0.75..1.25).contains(&pr), "PR = {pr}");
    }
}
