//! MaxFlops — SHOC's peak floating-point throughput synthetic (paper
//! Fig. 2).
//!
//! As in the paper, the instruction mix is architecture-specific: on GT200
//! a `mul` and a `mad` are interleaved so the dual-issue pipelines can
//! co-issue them (the paper's `R = 3`); on every other architecture a pure
//! `mad` chain is used (`R = 2`). Two independent accumulator chains keep
//! the (modelled) pipelines busy.

use crate::common::{check_f32, rand_f32, verdict, Benchmark, Metric, RunOutput, Scale, Window};
use gpucmp_compiler::{global_id_x, DslKernel, Expr, KernelDef, Unroll};
use gpucmp_ptx::Ty;
use gpucmp_runtime::{Gpu, GpuExt, RtError};
use gpucmp_sim::{Arch, LaunchConfig};

/// Unrolled operation pairs per outer-loop iteration.
const INNER_PAIRS: usize = 256;

/// MaxFlops benchmark.
#[derive(Clone, Debug)]
pub struct MaxFlops {
    /// Thread blocks.
    pub blocks: u32,
    /// Threads per block.
    pub block_size: u32,
    /// Outer loop iterations.
    pub iters: i32,
}

impl MaxFlops {
    /// Construct with the given scale.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Quick => MaxFlops {
                blocks: 16,
                block_size: 128,
                iters: 1,
            },
            Scale::Paper => MaxFlops {
                blocks: 120,
                block_size: 256,
                iters: 8,
            },
        }
    }

    /// Build the kernel for the given architecture's instruction mix.
    fn kernel(&self, dual_issue: bool) -> KernelDef {
        let mut k = DslKernel::new(if dual_issue {
            "maxflops_mulmad"
        } else {
            "maxflops_mad"
        });
        let data = k.param_ptr("data");
        let a = k.param("a", Ty::F32);
        let b = k.param("b", Ty::F32);
        let iters = k.param("iters", Ty::S32);
        let gid = k.let_(Ty::S32, global_id_x());
        let r = k.let_(
            Ty::F32,
            gpucmp_compiler::ld_global(data.clone(), gid, Ty::F32),
        );
        let r2 = k.let_(Ty::F32, Expr::from(r) + 1.0f32);
        k.for_(0i32, iters, 1, Unroll::None, |k, _t| {
            for _ in 0..INNER_PAIRS {
                if dual_issue {
                    // mul + mad interleave (GT200: can co-issue, R = 3)
                    k.assign(r2, Expr::from(r2) * a.clone());
                    k.assign(r, Expr::from(r) * a.clone() + b.clone());
                } else {
                    // mad-only (Fermi and the rest, R = 2), two chains
                    k.assign(r, Expr::from(r) * a.clone() + b.clone());
                    k.assign(r2, Expr::from(r2) * a.clone() + b.clone());
                }
            }
        });
        k.st_global(data, gid, Ty::F32, Expr::from(r) + Expr::from(r2));
        k.finish()
    }

    /// Per-thread CPU reference of the accumulator chain.
    fn reference(&self, init: &[f32], a: f32, b: f32, dual_issue: bool) -> Vec<f32> {
        init.iter()
            .map(|&v0| {
                let mut r = v0;
                let mut r2 = v0 + 1.0;
                for _ in 0..self.iters {
                    for _ in 0..INNER_PAIRS {
                        if dual_issue {
                            r2 *= a;
                            r = r.mul_add(a, b);
                        } else {
                            r = r.mul_add(a, b);
                            r2 = r2.mul_add(a, b);
                        }
                    }
                }
                r + r2
            })
            .collect()
    }
}

impl Benchmark for MaxFlops {
    fn name(&self) -> &'static str {
        "MaxFlops"
    }

    fn metric(&self) -> Metric {
        Metric::GFlopsPerSec
    }

    fn run(&self, gpu: &mut dyn Gpu) -> Result<RunOutput, RtError> {
        let n = (self.blocks * self.block_size) as usize;
        let dual = gpu.device().arch == Arch::Gt200;
        let def = self.kernel(dual);
        let h = gpu.build(&def)?;
        let buf = gpu.malloc((n * 4) as u64)?;
        let init = rand_f32(0x5EED01, n, 0.5, 1.0);
        gpu.h2d_t(buf, &init)?;
        let (a, b) = (0.999f32, 0.001f32);
        let cfg = LaunchConfig::new(self.blocks, self.block_size)
            .arg_ptr(buf)
            .arg_f32(a)
            .arg_f32(b)
            .arg_i32(self.iters);
        let w = Window::open(gpu);
        let out = gpu.launch(h, &cfg)?;
        let (wall_ns, kernel_ns, launches) = w.close(gpu);
        let got = gpu.d2h_t::<f32>(buf, n)?;
        let want = self.reference(&init, a, b, dual);
        let verify = verdict(check_f32(&got, &want, 1e-4));
        let gflops = out.report.stats.flops as f64 / kernel_ns;
        Ok(RunOutput {
            value: gflops,
            metric: Metric::GFlopsPerSec,
            verify,
            kernel_ns,
            wall_ns,
            launches,
            stats: out.report.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_runtime::{Cuda, OpenCl};
    use gpucmp_sim::DeviceSpec;

    #[test]
    fn maxflops_verifies_on_both_apis() {
        let b = MaxFlops::new(Scale::Quick);
        let mut cuda = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let rc = b.run(&mut cuda).unwrap();
        assert!(rc.verify.is_pass(), "{:?}", rc.verify);
        assert!(rc.value > 0.0);
        let mut ocl = OpenCl::create_any(DeviceSpec::gtx480());
        let ro = b.run(&mut ocl).unwrap();
        assert!(ro.verify.is_pass(), "{:?}", ro.verify);
        // same computation, near-identical achieved FLOPS (PR ≈ 1)
        let pr = ro.value / rc.value;
        assert!((0.9..1.1).contains(&pr), "PR = {pr}");
    }

    #[test]
    fn gt200_uses_dual_issue_mix() {
        let b = MaxFlops::new(Scale::Quick);
        let mut g280 = Cuda::new(DeviceSpec::gtx280()).unwrap();
        let r = b.run(&mut g280).unwrap();
        assert!(r.verify.is_pass(), "{:?}", r.verify);
        // flops per lane instruction must be 1.5 for the mul+mad mix
        // (1 + 2 flops per 2 instructions), strictly below the mad-only 2.
        let per = r.stats.flops as f64 / r.stats.lane_instructions as f64;
        assert!(per > 1.2 && per < 1.7, "flops/inst = {per}");
    }

    #[test]
    fn achieved_fraction_matches_paper_band() {
        // Fig. 2: ~71.5% of peak on GTX280, ~97.7% on GTX480.
        let b = MaxFlops::new(Scale::Paper);
        let mut g280 = Cuda::new(DeviceSpec::gtx280()).unwrap();
        let r280 = b.run(&mut g280).unwrap();
        let f280 = r280.value / DeviceSpec::gtx280().theoretical_peak_gflops();
        assert!((0.6..0.8).contains(&f280), "GTX280 fraction {f280}");
        let mut g480 = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let r480 = b.run(&mut g480).unwrap();
        let f480 = r480.value / DeviceSpec::gtx480().theoretical_peak_gflops();
        assert!((0.9..1.0).contains(&f480), "GTX480 fraction {f480}");
    }
}
