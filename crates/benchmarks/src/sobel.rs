//! Sobel — self-written 3x3 Sobel operator in the X direction (paper
//! Table II "SELF"; Figs 3 and 8).
//!
//! The paper's two implementations differ in where the filter lives: the
//! OpenCL version keeps it in **constant memory**, the CUDA version reads
//! it from **global memory**. On GT200 (no global-memory cache) the
//! repeated global filter loads are catastrophic — the OpenCL version runs
//! ~3x faster (Fig. 3); on Fermi the L1 cache absorbs them and the two are
//! equal (Fig. 8). [`SobelOpts::filter_in_const`] overrides the per-API
//! default to reproduce the Fig. 8 ablation.

use crate::common::{check_f32, rand_f32, verdict, Benchmark, Metric, RunOutput, Scale, Window};
use gpucmp_compiler::{ld_global, Api, Builtin, DslKernel, Expr, KernelDef};
use gpucmp_ptx::Ty;
use gpucmp_runtime::{Gpu, GpuExt, RtError};
use gpucmp_sim::LaunchConfig;

/// The Sobel X kernel coefficients (row-major 3x3).
pub const FILTER: [f32; 9] = [-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0];

/// Option overrides.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SobelOpts {
    /// Where the filter lives; `None` = the paper's per-API default
    /// (OpenCL: constant memory, CUDA: global memory).
    pub filter_in_const: Option<bool>,
}

/// Sobel benchmark.
#[derive(Clone, Debug)]
pub struct Sobel {
    /// Image width (multiple of 16).
    pub width: u32,
    /// Image height (multiple of 16).
    pub height: u32,
    /// Option overrides.
    pub opts: SobelOpts,
}

impl Sobel {
    /// Construct with the given scale.
    pub fn new(scale: Scale) -> Self {
        let (width, height) = match scale {
            Scale::Quick => (96, 64),
            Scale::Paper => (512, 512),
        };
        Sobel {
            width,
            height,
            opts: SobelOpts::default(),
        }
    }

    /// With explicit filter placement (Fig. 8 ablation).
    pub fn with_const_filter(mut self, v: bool) -> Self {
        self.opts.filter_in_const = Some(v);
        self
    }

    fn kernel(&self, use_const: bool) -> KernelDef {
        let mut k = DslKernel::new(if use_const {
            "sobel_const"
        } else {
            "sobel_glob"
        });
        let img = k.param_ptr("img");
        let out = k.param_ptr("out");
        let w = k.param("w", Ty::S32);
        let h = k.param("h", Ty::S32);
        let filt_glob = if use_const {
            None
        } else {
            Some(k.param_ptr("filter"))
        };
        let filt_const = if use_const {
            Some(k.const_array_f32(&FILTER))
        } else {
            None
        };
        let x = k.let_(
            Ty::S32,
            Expr::from(Builtin::CtaidX) * Builtin::NtidX + Builtin::TidX,
        );
        let y = k.let_(
            Ty::S32,
            Expr::from(Builtin::CtaidY) * Builtin::NtidY + Builtin::TidY,
        );
        // interior test via the unsigned-wrap idiom: (x-1) u< (w-2)
        let in_x = (Expr::from(x) - 1i32)
            .cast(Ty::U32)
            .lt((w.clone() - 2i32).cast(Ty::U32));
        let in_y = (Expr::from(y) - 1i32)
            .cast(Ty::U32)
            .lt((h.clone() - 2i32).cast(Ty::U32));
        k.if_else(
            in_x,
            |k| {
                k.if_else(
                    in_y,
                    |k| {
                        let acc = k.let_(Ty::F32, 0.0f32);
                        for j in 0..3i32 {
                            for i in 0..3i32 {
                                let coeff = match (&filt_const, &filt_glob) {
                                    (Some(c), _) => c.ld((j * 3 + i) as i64),
                                    (_, Some(g)) => {
                                        ld_global(g.clone(), (j * 3 + i) as i64, Ty::F32)
                                    }
                                    _ => unreachable!(),
                                };
                                let pix = ld_global(
                                    img.clone(),
                                    (Expr::from(y) + (j - 1)) * w.clone() + Expr::from(x) + (i - 1),
                                    Ty::F32,
                                );
                                k.assign(acc, Expr::from(acc) + coeff * pix);
                            }
                        }
                        k.st_global(out.clone(), Expr::from(y) * w.clone() + x, Ty::F32, acc);
                    },
                    |k| {
                        k.st_global(out.clone(), Expr::from(y) * w.clone() + x, Ty::F32, 0.0f32);
                    },
                );
            },
            |k| {
                // x out of interior; still zero the border pixel (always in
                // range: the grid exactly covers the image)
                k.st_global(out.clone(), Expr::from(y) * w.clone() + x, Ty::F32, 0.0f32);
            },
        );
        k.finish()
    }

    /// CPU reference.
    pub fn reference(&self, img: &[f32]) -> Vec<f32> {
        let (w, h) = (self.width as usize, self.height as usize);
        let mut out = vec![0.0f32; w * h];
        for y in 1..h - 1 {
            for x in 1..w - 1 {
                let mut acc = 0.0f32;
                for j in 0..3 {
                    for i in 0..3 {
                        acc += FILTER[j * 3 + i] * img[(y + j - 1) * w + (x + i - 1)];
                    }
                }
                out[y * w + x] = acc;
            }
        }
        out
    }
}

impl Benchmark for Sobel {
    fn name(&self) -> &'static str {
        "Sobel"
    }

    fn metric(&self) -> Metric {
        Metric::Seconds
    }

    fn run(&self, gpu: &mut dyn Gpu) -> Result<RunOutput, RtError> {
        let use_const = self
            .opts
            .filter_in_const
            .unwrap_or(gpu.api() == Api::OpenCl);
        let (w, h) = (self.width as usize, self.height as usize);
        let def = self.kernel(use_const);
        let kh = gpu.build(&def)?;
        let img = gpu.alloc::<f32>(w * h)?;
        let out = gpu.alloc::<f32>(w * h)?;
        let data = rand_f32(0x50BE1, w * h, 0.0, 1.0);
        gpu.h2d_buf(&img, &data)?;
        let mut cfg = LaunchConfig::builder()
            .grid((self.width / 16, self.height / 16))
            .block((16u32, 16u32))
            .arg_ptr(img)
            .arg_ptr(out)
            .arg_i32(self.width as i32)
            .arg_i32(self.height as i32);
        if !use_const {
            let f = gpu.alloc::<f32>(FILTER.len())?;
            gpu.h2d_buf(&f, &FILTER)?;
            cfg = cfg.arg_ptr(f);
        }
        let win = Window::open(gpu);
        let launch = gpu.launch(kh, cfg)?;
        let (wall_ns, kernel_ns, launches) = win.close(gpu);
        let got = gpu.d2h_buf(&out)?;
        let want = self.reference(&data);
        let verify = verdict(check_f32(&got, &want, 1e-4));
        Ok(RunOutput {
            value: kernel_ns * 1e-9,
            metric: Metric::Seconds,
            verify,
            kernel_ns,
            wall_ns,
            launches,
            stats: launch.report.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_runtime::{Cuda, OpenCl};
    use gpucmp_sim::DeviceSpec;

    #[test]
    fn sobel_verifies_both_apis_and_placements() {
        let mut cuda = Cuda::new(DeviceSpec::gtx480()).unwrap();
        for use_const in [true, false] {
            let b = Sobel::new(Scale::Quick).with_const_filter(use_const);
            let r = b.run(&mut cuda).unwrap();
            assert!(r.verify.is_pass(), "const={use_const}: {:?}", r.verify);
            assert!(r.value > 0.0);
        }
        let mut ocl = OpenCl::create_any(DeviceSpec::gtx280());
        let r = Sobel::new(Scale::Quick).run(&mut ocl).unwrap();
        assert!(r.verify.is_pass());
    }

    #[test]
    fn constant_memory_wins_big_on_gt200() {
        // Fig. 8: on GTX280 the constant-memory version is ~4x faster;
        // on GTX480 the difference is small.
        let with_c = Sobel::new(Scale::Paper).with_const_filter(true);
        let without = Sobel::new(Scale::Paper).with_const_filter(false);
        let mut g280 = Cuda::new(DeviceSpec::gtx280()).unwrap();
        let t_const = with_c.run(&mut g280).unwrap().value;
        let t_glob = without.run(&mut g280).unwrap().value;
        let speedup = t_glob / t_const;
        assert!(speedup > 2.0, "GTX280 const speedup {speedup}");
        let mut g480 = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let t_const = with_c.run(&mut g480).unwrap().value;
        let t_glob = without.run(&mut g480).unwrap().value;
        let ratio = t_glob / t_const;
        assert!(ratio < 1.5, "GTX480 const speedup should be small: {ratio}");
    }

    #[test]
    fn paper_defaults_differ_per_api() {
        // Unmodified Sobel: OpenCL (const mem) beats CUDA (global filter)
        // on GTX280 — the PR = 3.2 outlier of Fig. 3.
        let b = Sobel::new(Scale::Paper);
        let mut cuda = Cuda::new(DeviceSpec::gtx280()).unwrap();
        let tc = b.run(&mut cuda).unwrap().value;
        let mut ocl = OpenCl::create_any(DeviceSpec::gtx280());
        let to = b.run(&mut ocl).unwrap().value;
        let pr = tc / to; // seconds: PR = t_cuda / t_opencl
        assert!(pr > 1.5, "GTX280 Sobel PR {pr}");
    }
}
