//! FDTD — 3-D finite-difference time-domain, order-8 in space (NVIDIA SDK
//! `FDTD3d`; paper Table II, MPoints/s; the loop-unrolling study of
//! Figs 6-7).
//!
//! Each thread owns an (x, y) column and marches the z axis, keeping a
//! 2R+1-plane register queue for the z taps and staging the current plane
//! in a halo'd shared tile for the x/y taps. The kernel has the paper's
//! two unroll points:
//!
//! - **point a** — the z loop (`#pragma unroll 9` in the paper's listing);
//! - **point b** — the radius loop (`#pragma unroll RADIUS`).
//!
//! The paper's source configurations: CUDA unrolls at both points, OpenCL
//! only at b. [`FdtdOpts`] selects any combination for the Fig. 6/7
//! ablations.

use crate::common::{check_f32, rng, verdict, Benchmark, Metric, RunOutput, Scale, Window};
use gpucmp_compiler::{ld_global, Api, Builtin, DslKernel, Expr, KernelDef, Unroll, Var};
use gpucmp_ptx::Ty;
use gpucmp_runtime::{Gpu, GpuExt, RtError};
use gpucmp_sim::LaunchConfig;
use rand::Rng;

/// Stencil radius (order 8 in space).
pub const RADIUS: i32 = 4;
/// Tile edge (threads per block dimension).
const TILE: i32 = 16;
/// The unroll factor of the paper's point-a pragma (`#pragma unroll 9`).
pub const UNROLL_A: u32 = 9;

/// Stencil coefficients, index 0 = centre.
pub const COEFF: [f32; 5] = [0.25, 0.14, 0.08, 0.03, 0.01];

/// Unroll-point configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FdtdOpts {
    /// Unroll the z loop by [`UNROLL_A`] (paper point *a*); `None` = paper
    /// default (CUDA yes, OpenCL no).
    pub unroll_a: Option<bool>,
    /// Unroll the radius loop (paper point *b*); both sources have this
    /// pragma in the paper.
    pub unroll_b: bool,
}

impl Default for FdtdOpts {
    fn default() -> Self {
        FdtdOpts {
            unroll_a: None,
            unroll_b: true,
        }
    }
}

/// FDTD benchmark. `dimx`/`dimy` are interior extents (multiples of 16);
/// `dimz` is the total plane count including the 2R z-halo.
#[derive(Clone, Debug)]
pub struct Fdtd {
    /// Interior x extent.
    pub dimx: i32,
    /// Interior y extent.
    pub dimy: i32,
    /// Total z planes (including halo).
    pub dimz: i32,
    /// Unroll options.
    pub opts: FdtdOpts,
    /// Split the volume into two z-chunks on two explicit streams, each
    /// carrying upload → stencil → readback; chunk 2's upload overlaps
    /// chunk 1's kernel (double buffering). Each chunk re-uploads the
    /// shared R-plane halo band, the usual price of domain decomposition.
    /// Off by default — the paper's runs are synchronous.
    pub streams: bool,
}

impl Fdtd {
    /// Construct with the given scale.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Fdtd {
                dimx: 32,
                dimy: 32,
                dimz: 22,
                opts: FdtdOpts::default(),
                streams: false,
            },
            Scale::Paper => Fdtd {
                dimx: 128,
                dimy: 128,
                dimz: 35, // 27 interior planes = 3 x the unroll factor
                opts: FdtdOpts::default(),
                streams: false,
            },
        }
    }

    /// Override the point-a pragma.
    pub fn with_unroll_a(mut self, v: bool) -> Self {
        self.opts.unroll_a = Some(v);
        self
    }

    /// Override the point-b pragma.
    pub fn with_unroll_b(mut self, v: bool) -> Self {
        self.opts.unroll_b = v;
        self
    }

    /// Toggle the two-stream z-chunk pipeline.
    pub fn with_streams(mut self, on: bool) -> Self {
        self.streams = on;
        self
    }

    /// Padded x extent (with halo).
    fn px(&self) -> i32 {
        self.dimx + 2 * RADIUS
    }

    /// Padded y extent.
    fn py(&self) -> i32 {
        self.dimy + 2 * RADIUS
    }

    /// Total padded volume in f32 elements.
    fn volume(&self) -> usize {
        (self.px() * self.py() * self.dimz) as usize
    }

    fn kernel(&self, unroll_a: bool) -> KernelDef {
        let r = RADIUS;
        let tile_w = TILE + 2 * r; // 24
        let mut k = DslKernel::new("fdtd3d");
        let input = k.param_ptr("input");
        let output = k.param_ptr("output");
        let dimz = k.param("dimz", Ty::S32);
        // SDK-style: coefficients live in constant memory
        let coef = k.const_array_f32(&COEFF);
        let px = self.px();
        let py = self.py();
        let plane = px * py;
        let tile = k.shared_array(Ty::F32, (tile_w * tile_w) as u32);
        let tx = k.let_(Ty::S32, Expr::from(Builtin::TidX));
        let ty_ = k.let_(Ty::S32, Expr::from(Builtin::TidY));
        let gx = k.let_(
            Ty::S32,
            Expr::from(Builtin::CtaidX) * TILE + Expr::from(tx) + r,
        );
        let gy = k.let_(
            Ty::S32,
            Expr::from(Builtin::CtaidY) * TILE + Expr::from(ty_) + r,
        );
        // column base address component (y*px + x)
        let col = k.let_(Ty::S32, Expr::from(gy) * px + gx);
        // register queue: q[0] = behind_R ... q[R] = current ... q[2R] = infront_R
        let q: Vec<Var> = (0..(2 * r + 1)).map(|_| k.var(Ty::F32)).collect();
        for (i, qi) in q.iter().enumerate() {
            k.assign(
                *qi,
                ld_global(input.clone(), Expr::from(col) + (i as i32) * plane, Ty::F32),
            );
        }
        let unroll = if unroll_a {
            Unroll::By(UNROLL_A)
        } else {
            Unroll::None
        };
        let q_owned = q.clone();
        let input_c = input.clone();
        let output_c = output.clone();
        let coef_c = coef;
        let dimz_c = dimz.clone();
        k.for_(r, dimz.clone() - r, 1, unroll, move |k, z| {
            let q = &q_owned;
            // stage the current plane (with halo) in the shared tile
            let cur_idx = Expr::from(col) + z.clone() * plane;
            k.if_(Expr::from(ty_).lt(r), |k| {
                // y halo above and below
                k.st_shared(
                    tile,
                    Expr::from(ty_) * tile_w + Expr::from(tx) + r,
                    ld_global(input_c.clone(), cur_idx.clone() - r * px, Ty::F32),
                );
                k.st_shared(
                    tile,
                    (Expr::from(ty_) + TILE + r) * tile_w + Expr::from(tx) + r,
                    ld_global(input_c.clone(), cur_idx.clone() + TILE * px, Ty::F32),
                );
            });
            k.if_(Expr::from(tx).lt(r), |k| {
                // x halo left and right
                k.st_shared(
                    tile,
                    (Expr::from(ty_) + r) * tile_w + tx,
                    ld_global(input_c.clone(), cur_idx.clone() - r, Ty::F32),
                );
                k.st_shared(
                    tile,
                    (Expr::from(ty_) + r) * tile_w + Expr::from(tx) + TILE + r,
                    ld_global(input_c.clone(), cur_idx.clone() + TILE, Ty::F32),
                );
            });
            k.st_shared(
                tile,
                (Expr::from(ty_) + r) * tile_w + Expr::from(tx) + r,
                Expr::from(q[r as usize]),
            );
            k.barrier();
            // centre tap
            let acc = k.let_(Ty::F32, Expr::from(q[r as usize]) * coef_c.ld(0i64));
            // z taps from the register queue (static, register-resident)
            for rr in 1..=r {
                k.assign(
                    acc,
                    Expr::from(acc)
                        + (Expr::from(q[(r - rr) as usize]) + Expr::from(q[(r + rr) as usize]))
                            * coef_c.ld(rr as i64),
                );
            }
            // x/y taps from the shared tile — the paper's point-b loop
            let b_unroll = if self.opts.unroll_b {
                Unroll::Full
            } else {
                Unroll::None
            };
            let coef_b = coef_c;
            k.for_(1i32, r + 1, 1, b_unroll, |k, rr| {
                let c = k.let_(Ty::F32, coef_b.ld(rr.clone()));
                let sum = k.let_(
                    Ty::F32,
                    tile.ld((Expr::from(ty_) + r - rr.clone()) * tile_w + Expr::from(tx) + r)
                        + tile.ld((Expr::from(ty_) + r + rr.clone()) * tile_w + Expr::from(tx) + r)
                        + tile.ld((Expr::from(ty_) + r) * tile_w + Expr::from(tx) + r - rr.clone())
                        + tile.ld((Expr::from(ty_) + r) * tile_w + Expr::from(tx) + r + rr),
                );
                k.assign(acc, Expr::from(acc) + Expr::from(c) * sum);
            });
            k.st_global(output_c.clone(), cur_idx.clone(), Ty::F32, acc);
            // advance the register queue
            for i in 0..(2 * r) as usize {
                k.assign(q[i], Expr::from(q[i + 1]));
            }
            let next_z = (z + 1i32 + r).min_(dimz_c.clone() - 1i32);
            k.assign(
                q[(2 * r) as usize],
                ld_global(input_c.clone(), Expr::from(col) + next_z * plane, Ty::F32),
            );
            k.barrier();
        });
        k.finish()
    }

    /// The two-stream pipeline: the volume splits into a lower and an upper
    /// z-chunk, each on its own stream carrying upload(chunk + R-plane
    /// halo) → stencil → readback. The chunks share only the halo band
    /// around the split plane, which both streams upload (identical
    /// bytes), so no cross-stream event is needed and chunk 2's uploads
    /// overlap chunk 1's kernel. The kernel is unchanged — each launch
    /// sees a base pointer offset to its chunk and the chunk's plane count
    /// as `dimz`.
    fn run_streamed(
        &self,
        gpu: &mut dyn Gpu,
        h: gpucmp_runtime::KernelHandle,
        d_in: gpucmp_sim::DevPtr,
        d_out: gpucmp_sim::DevPtr,
        data: &[f32],
    ) -> Result<RunOutput, RtError> {
        let r = RADIUS as usize;
        let plane = (self.px() * self.py()) as usize;
        let pz = self.dimz as usize;
        let interior = pz - 2 * r;
        let hz = [interior / 2, interior - interior / 2];
        // First interior plane written by each chunk; chunk 0 ends (and
        // chunk 1 starts) at the split plane `mid`.
        let mid = r + hz[0];
        let write0 = [r, mid];
        // Planes each stream reads back: chunk 0 owns [0, mid) (its
        // interior plus the lower global halo), chunk 1 owns [mid, pz).
        let own0 = [0, mid];
        let own_n = [mid, pz - mid];
        let streams = [gpu.create_stream(), gpu.create_stream()];
        let win = Window::open(gpu);
        let mut stats = gpucmp_sim::ExecStats::default();
        let mut chunks = Vec::with_capacity(2);
        for (i, &st) in streams.iter().enumerate() {
            // Input: the chunk's interior planes plus R halo planes on
            // each side (clamped to the volume).
            let lo = write0[i] - r;
            let dz = hz[i] + 2 * r;
            gpu.enqueue_h2d_t(
                st,
                d_in.offset((lo * plane * 4) as u64),
                &data[lo * plane..(lo + dz) * plane],
            )?;
            // Output: exactly the planes this stream reads back, so the
            // global halo planes pass through and the streams never write
            // overlapping output regions.
            gpu.enqueue_h2d_t(
                st,
                d_out.offset((own0[i] * plane * 4) as u64),
                &data[own0[i] * plane..(own0[i] + own_n[i]) * plane],
            )?;
            let cfg = LaunchConfig::new(
                ((self.dimx / TILE) as u32, (self.dimy / TILE) as u32),
                (TILE as u32, TILE as u32),
            )
            .arg_ptr(d_in.offset((lo * plane * 4) as u64))
            .arg_ptr(d_out.offset((lo * plane * 4) as u64))
            .arg_i32(dz as i32);
            let (_, launch) = gpu.enqueue_launch(st, h, cfg)?;
            stats.merge(&launch.report.stats);
            chunks.push(gpu.enqueue_d2h_t::<f32>(
                st,
                d_out.offset((own0[i] * plane * 4) as u64),
                own_n[i] * plane,
            )?);
        }
        gpu.device_synchronize()?;
        let (wall_ns, kernel_ns, launches) = win.close(gpu);
        let mut got = Vec::with_capacity(self.volume());
        for ev in chunks {
            got.extend(gpu.take_readback_t::<f32>(ev)?);
        }
        Ok(self.finish(got, data, stats, wall_ns, kernel_ns, launches))
    }

    /// Verify `got` against the CPU reference and assemble the output.
    fn finish(
        &self,
        got: Vec<f32>,
        data: &[f32],
        stats: gpucmp_sim::ExecStats,
        wall_ns: f64,
        kernel_ns: f64,
        launches: u64,
    ) -> RunOutput {
        let want = self.reference(data);
        // verify interior region only (the tile grid covers exactly the
        // interior; halo columns pass through)
        let (px, py) = (self.px() as usize, self.py() as usize);
        let plane = px * py;
        let r4 = RADIUS as usize;
        let mut got_int = Vec::new();
        let mut want_int = Vec::new();
        for z in r4..(self.dimz as usize - r4) {
            for y in r4..(py - r4) {
                let row = z * plane + y * px;
                got_int.extend_from_slice(&got[row + r4..row + r4 + self.dimx as usize]);
                want_int.extend_from_slice(&want[row + r4..row + r4 + self.dimx as usize]);
            }
        }
        let verify = verdict(check_f32(&got_int, &want_int, 1e-4));
        let points = self.dimx as f64 * self.dimy as f64 * (self.dimz - 2 * RADIUS) as f64;
        RunOutput {
            value: points / (kernel_ns * 1e-3), // points per µs = MPoints/s
            metric: Metric::MPixelsPerSec,
            verify,
            kernel_ns,
            wall_ns,
            launches,
            stats,
        }
    }

    /// CPU reference over the padded volume (interior z planes only).
    fn reference(&self, input: &[f32]) -> Vec<f32> {
        let (px, py, pz) = (self.px() as usize, self.py() as usize, self.dimz as usize);
        let plane = px * py;
        let r = RADIUS as usize;
        let mut out = input.to_vec();
        for z in r..pz - r {
            for y in r..py - r {
                for x in r..px - r {
                    let i = z * plane + y * px + x;
                    let mut acc = input[i] * COEFF[0];
                    for rr in 1..=r {
                        acc += (input[i - rr * plane] + input[i + rr * plane]) * COEFF[rr];
                        acc += ((input[i - rr * px] + input[i + rr * px])
                            + (input[i - rr] + input[i + rr]))
                            * COEFF[rr];
                    }
                    out[i] = acc;
                }
            }
        }
        out
    }
}

impl Benchmark for Fdtd {
    fn name(&self) -> &'static str {
        if self.streams {
            "FDTD+streams"
        } else {
            "FDTD"
        }
    }

    fn metric(&self) -> Metric {
        Metric::MPixelsPerSec // MPoints/s; same scale
    }

    fn run(&self, gpu: &mut dyn Gpu) -> Result<RunOutput, RtError> {
        let unroll_a = self.opts.unroll_a.unwrap_or(gpu.api() == Api::Cuda);
        let def = self.kernel(unroll_a);
        let h = gpu.build(&def)?;
        let vol = self.volume();
        let d_in = gpu.malloc((vol * 4) as u64)?;
        let d_out = gpu.malloc((vol * 4) as u64)?;
        let mut r = rng(0xFD7D);
        let data: Vec<f32> = (0..vol)
            .map(|_| r.gen_range(0..256) as f32 / 256.0)
            .collect();
        if self.streams {
            return self.run_streamed(gpu, h, d_in, d_out, &data);
        }
        gpu.h2d_t(d_in, &data)?;
        gpu.h2d_t(d_out, &data)?; // halo planes pass through
        let cfg = LaunchConfig::new(
            ((self.dimx / TILE) as u32, (self.dimy / TILE) as u32),
            (TILE as u32, TILE as u32),
        )
        .arg_ptr(d_in)
        .arg_ptr(d_out)
        .arg_i32(self.dimz);
        let win = Window::open(gpu);
        let launch = gpu.launch(h, &cfg)?;
        let (wall_ns, kernel_ns, launches) = win.close(gpu);
        let got = gpu.d2h_t::<f32>(d_out, vol)?;
        Ok(self.finish(
            got,
            &data,
            launch.report.stats,
            wall_ns,
            kernel_ns,
            launches,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_runtime::{Cuda, OpenCl};
    use gpucmp_sim::DeviceSpec;

    #[test]
    fn fdtd_verifies_all_unroll_combinations() {
        let mut cuda = Cuda::new(DeviceSpec::gtx480()).unwrap();
        for a in [true, false] {
            for b in [true, false] {
                let bench = Fdtd::new(Scale::Quick).with_unroll_a(a).with_unroll_b(b);
                let r = bench.run(&mut cuda).unwrap();
                assert!(r.verify.is_pass(), "a={a} b={b}: {:?}", r.verify);
            }
        }
        let mut ocl = OpenCl::create_any(DeviceSpec::gtx280());
        let r = Fdtd::new(Scale::Quick).run(&mut ocl).unwrap();
        assert!(r.verify.is_pass(), "{:?}", r.verify);
    }

    #[test]
    fn streamed_chunks_verify_and_finish_earlier() {
        // Both chunk kernels march their own z range; the reassembled
        // volume must match the single-launch result exactly.
        let mut cuda = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let r = Fdtd::new(Scale::Quick)
            .with_streams(true)
            .run(&mut cuda)
            .unwrap();
        assert!(r.verify.is_pass(), "{:?}", r.verify);
        assert_eq!(r.launches, 2);
        let mut ocl = OpenCl::create_any(DeviceSpec::gtx280());
        let ro = Fdtd::new(Scale::Quick)
            .with_streams(true)
            .run(&mut ocl)
            .unwrap();
        assert!(ro.verify.is_pass(), "{:?}", ro.verify);
        // At paper scale the hidden chunk-2 upload outweighs the extra
        // halo-band re-upload and second launch overhead.
        let mut g1 = Cuda::new(DeviceSpec::gtx480()).unwrap();
        Fdtd::new(Scale::Paper).run(&mut g1).unwrap();
        let t_sync = g1.now_ns();
        let mut g2 = Cuda::new(DeviceSpec::gtx480()).unwrap();
        Fdtd::new(Scale::Paper)
            .with_streams(true)
            .run(&mut g2)
            .unwrap();
        let t_stream = g2.now_ns();
        assert!(
            t_stream < t_sync,
            "streamed end {t_stream} ns should beat sync end {t_sync} ns"
        );
    }

    #[test]
    fn unroll_a_helps_cuda() {
        // Fig. 6: removing the point-a pragma drops CUDA FDTD to ~85%.
        let with_a = Fdtd::new(Scale::Paper).with_unroll_a(true);
        let without = Fdtd::new(Scale::Paper).with_unroll_a(false);
        for dev in [DeviceSpec::gtx280(), DeviceSpec::gtx480()] {
            let mut g = Cuda::new(dev.clone()).unwrap();
            let p_with = with_a.run(&mut g).unwrap().value;
            let p_without = without.run(&mut g).unwrap().value;
            let frac = p_without / p_with;
            assert!(
                (0.6..0.99).contains(&frac),
                "{}: no-unroll fraction {frac}",
                dev.name
            );
        }
    }

    #[test]
    fn opencl_outer_unroll_backfires() {
        // Fig. 7: OpenCL_{a,b} collapses to ~48-66% of CUDA_{a,b} from
        // register pressure, while OpenCL_b matches or beats CUDA_b.
        let mut g280 = Cuda::new(DeviceSpec::gtx280()).unwrap();
        let cuda_ab = Fdtd::new(Scale::Paper)
            .with_unroll_a(true)
            .run(&mut g280)
            .unwrap()
            .value;
        let mut o280 = OpenCl::create_any(DeviceSpec::gtx280());
        let ocl_ab = Fdtd::new(Scale::Paper)
            .with_unroll_a(true)
            .run(&mut o280)
            .unwrap()
            .value;
        let frac = ocl_ab / cuda_ab;
        assert!(
            frac < 0.85,
            "OpenCL with outer unroll should collapse: {frac}"
        );
    }
}
