//! FFT — 512-point batched complex FFT (SHOC; paper Table II, GFlops/s —
//! and the subject of the paper's Table V PTX-statistics analysis).
//!
//! Each work-group of 64 threads transforms one 512-point sequence in
//! shared memory: a bit-reversal permutation on load, then nine radix-2
//! stages with runtime twiddles and a barrier between stages. The
//! "forward" kernel is the exact artefact the paper disassembles in
//! Table V: compile it with both front-ends and diff the static counts
//! (see `gpucmp-core`'s `table5` experiment).
//!
//! Complex data is planar (separate re/im buffers), so our `ld.global`
//! counts are twice the paper's float2 loads; the CUDA/OpenCL *equality*
//! of the memory instructions — the paper's point — is preserved.

use crate::common::{rng, verdict, Benchmark, Metric, RunOutput, Scale, Window};
use gpucmp_compiler::{ld_global, Builtin, DslKernel, Expr, KernelDef};
use gpucmp_ptx::Ty;
use gpucmp_runtime::{Gpu, GpuExt, RtError};
use gpucmp_sim::LaunchConfig;
use rand::Rng;
use std::f64::consts::PI;

/// Transform length.
pub const N: usize = 512;
/// Threads per work-group.
const THREADS: u32 = 64;
/// Elements each thread owns.
const PER_THREAD: usize = N / THREADS as usize;
/// log2(N).
const STAGES: usize = 9;

/// FFT benchmark.
#[derive(Clone, Debug)]
pub struct Fft {
    /// Number of 512-point transforms.
    pub batches: u32,
    /// Inverse transform (conjugate twiddles + 1/N scaling).
    pub inverse: bool,
}

impl Fft {
    /// Construct with the given scale (forward transform).
    pub fn new(scale: Scale) -> Self {
        Fft {
            batches: match scale {
                Scale::Quick => 8,
                Scale::Paper => 192,
            },
            inverse: false,
        }
    }

    /// The inverse transform.
    pub fn inverse(mut self) -> Self {
        self.inverse = true;
        self
    }

    /// Build the kernel (the paper's Table V "forward" kernel when
    /// `inverse == false`). Public so the Table V experiment can compile
    /// it standalone.
    pub fn kernel(&self) -> KernelDef {
        let sign = if self.inverse { 1.0f64 } else { -1.0f64 };
        let mut k = DslKernel::new(if self.inverse {
            "fft512_inv"
        } else {
            "fft512_fwd"
        });
        let in_re = k.param_ptr("in_re");
        let in_im = k.param_ptr("in_im");
        let out_re = k.param_ptr("out_re");
        let out_im = k.param_ptr("out_im");
        let sm_re = k.shared_array(Ty::F32, N as u32);
        let sm_im = k.shared_array(Ty::F32, N as u32);
        let tid = k.let_(Ty::S32, Expr::from(Builtin::TidX));
        let base = k.let_(Ty::S32, Expr::from(Builtin::CtaidX) * N as i32);
        // ---- load with bit-reversed addressing ----
        for j in 0..PER_THREAD {
            let i = Expr::from(tid) + (j as i32 * THREADS as i32);
            // 9-bit reversal, written with explicit bit ops as real FFT
            // sources do
            let mut rev = (i.clone() & 1i32) << 8i32;
            for b in 1..STAGES {
                rev = rev | ((i.clone() >> b as i32) & 1i32) << (8 - b) as i32;
            }
            let rv = k.let_(Ty::S32, rev);
            k.st_shared(
                sm_re,
                rv,
                ld_global(in_re.clone(), Expr::from(base) + i.clone(), Ty::F32),
            );
            k.st_shared(
                sm_im,
                rv,
                ld_global(in_im.clone(), Expr::from(base) + i, Ty::F32),
            );
        }
        // ---- 9 radix-2 stages ----
        for s in 0..STAGES {
            k.barrier();
            let half = 1i64 << s;
            for j in 0..PER_THREAD / 2 {
                // butterfly index for this thread
                let bfly = Expr::from(tid) + (j as i32 * THREADS as i32);
                // pos = bfly % half; written arithmetically: the OpenCL
                // front-end strength-reduces, the CUDA one folds stage 0
                let pos = k.let_(Ty::S32, bfly.clone() % half as i32);
                let top = k.let_(Ty::S32, (bfly / half as i32) * (2 * half) as i32 + pos);
                let bot = k.let_(Ty::S32, Expr::from(top) + half as i32);
                let xr = k.let_(Ty::F32, sm_re.ld(bot));
                let xi = k.let_(Ty::F32, sm_im.ld(bot));
                let ur = k.let_(Ty::F32, sm_re.ld(top));
                let ui = k.let_(Ty::F32, sm_im.ld(top));
                // The classic macro idiom: specialise the twiddle-free
                // first stage with a *stage-constant* conditional. The
                // mature front-end folds the comparison and keeps exactly
                // one path; the young one emits both paths plus the branch
                // (the paper's Table V arithmetic/flow-control excess).
                let stage_is_trivial = Expr::ImmI(half).eq_(1i32);
                k.if_else(
                    stage_is_trivial,
                    |k| {
                        k.st_shared(sm_re, top, Expr::from(ur) + xr);
                        k.st_shared(sm_im, top, Expr::from(ui) + xi);
                        k.st_shared(sm_re, bot, Expr::from(ur) - xr);
                        k.st_shared(sm_im, bot, Expr::from(ui) - xi);
                    },
                    |k| {
                        let angle = k.let_(
                            Ty::F32,
                            Expr::from(pos).cast(Ty::F32) * (sign * PI / half as f64) as f32,
                        );
                        let wr = k.let_(Ty::F32, Expr::from(angle).cos());
                        let wi = k.let_(Ty::F32, Expr::from(angle).sin());
                        let tr = k.let_(Ty::F32, Expr::from(xr) * wr - Expr::from(xi) * wi);
                        let ti = k.let_(Ty::F32, Expr::from(xr) * wi + Expr::from(xi) * wr);
                        k.st_shared(sm_re, top, Expr::from(ur) + tr);
                        k.st_shared(sm_im, top, Expr::from(ui) + ti);
                        k.st_shared(sm_re, bot, Expr::from(ur) - tr);
                        k.st_shared(sm_im, bot, Expr::from(ui) - ti);
                    },
                );
            }
        }
        k.barrier();
        // ---- store ----
        let scale = if self.inverse {
            1.0f32 / N as f32
        } else {
            1.0f32
        };
        for j in 0..PER_THREAD {
            let i = Expr::from(tid) + (j as i32 * THREADS as i32);
            let re = sm_re.ld(i.clone());
            let im = sm_im.ld(i.clone());
            let (re, im) = if self.inverse {
                (re * scale, im * scale)
            } else {
                (re, im)
            };
            k.st_global(out_re.clone(), Expr::from(base) + i.clone(), Ty::F32, re);
            k.st_global(out_im.clone(), Expr::from(base) + i, Ty::F32, im);
        }
        k.finish()
    }

    /// f64 reference DFT-free FFT (iterative radix-2, same algorithm) for
    /// verification.
    pub fn reference(&self, re: &[f32], im: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let sign = if self.inverse { 1.0 } else { -1.0 };
        let mut out_re = vec![0.0f64; re.len()];
        let mut out_im = vec![0.0f64; im.len()];
        for batch in 0..re.len() / N {
            let b0 = batch * N;
            // bit reverse
            for i in 0..N {
                let mut r = 0usize;
                for b in 0..STAGES {
                    r |= ((i >> b) & 1) << (STAGES - 1 - b);
                }
                out_re[b0 + r] = re[b0 + i] as f64;
                out_im[b0 + r] = im[b0 + i] as f64;
            }
            for s in 0..STAGES {
                let half = 1usize << s;
                for bfly in 0..N / 2 {
                    let pos = bfly % half;
                    let top = b0 + (bfly / half) * 2 * half + pos;
                    let bot = top + half;
                    let angle = sign * PI * pos as f64 / half as f64;
                    let (wr, wi) = (angle.cos(), angle.sin());
                    let (xr, xi) = (out_re[bot], out_im[bot]);
                    let (tr, ti) = (xr * wr - xi * wi, xr * wi + xi * wr);
                    let (ur, ui) = (out_re[top], out_im[top]);
                    out_re[top] = ur + tr;
                    out_im[top] = ui + ti;
                    out_re[bot] = ur - tr;
                    out_im[bot] = ui - ti;
                }
            }
            if self.inverse {
                for i in 0..N {
                    out_re[b0 + i] /= N as f64;
                    out_im[b0 + i] /= N as f64;
                }
            }
        }
        (
            out_re.iter().map(|&v| v as f32).collect(),
            out_im.iter().map(|&v| v as f32).collect(),
        )
    }
}

/// Absolute-tolerance comparison scaled to the FFT magnitude.
fn check_fft(got: &[f32], want: &[f32]) -> Result<(), String> {
    // inputs are in [-1, 1]; output magnitude is bounded by N
    let tol = 0.02f32;
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if (g - w).abs() > tol {
            return Err(format!("element {i}: got {g}, want {w}"));
        }
    }
    Ok(())
}

impl Benchmark for Fft {
    fn name(&self) -> &'static str {
        "FFT"
    }

    fn metric(&self) -> Metric {
        Metric::GFlopsPerSec
    }

    fn run(&self, gpu: &mut dyn Gpu) -> Result<RunOutput, RtError> {
        let total = self.batches as usize * N;
        let def = self.kernel();
        let h = gpu.build(&def)?;
        let d_ire = gpu.malloc((total * 4) as u64)?;
        let d_iim = gpu.malloc((total * 4) as u64)?;
        let d_ore = gpu.malloc((total * 4) as u64)?;
        let d_oim = gpu.malloc((total * 4) as u64)?;
        let mut r = rng(0xFF7);
        let re: Vec<f32> = (0..total).map(|_| r.gen_range(-1.0..1.0)).collect();
        let im: Vec<f32> = (0..total).map(|_| r.gen_range(-1.0..1.0)).collect();
        gpu.h2d_t(d_ire, &re)?;
        gpu.h2d_t(d_iim, &im)?;
        let cfg = LaunchConfig::new(self.batches, THREADS)
            .arg_ptr(d_ire)
            .arg_ptr(d_iim)
            .arg_ptr(d_ore)
            .arg_ptr(d_oim);
        let win = Window::open(gpu);
        let launch = gpu.launch(h, &cfg)?;
        let (wall_ns, kernel_ns, launches) = win.close(gpu);
        let got_re = gpu.d2h_t::<f32>(d_ore, total)?;
        let got_im = gpu.d2h_t::<f32>(d_oim, total)?;
        let (want_re, want_im) = self.reference(&re, &im);
        let verify =
            verdict(check_fft(&got_re, &want_re).and_then(|_| check_fft(&got_im, &want_im)));
        // 5 N log2 N flops per complex FFT (the conventional accounting)
        let flops = 5.0 * N as f64 * STAGES as f64 * self.batches as f64;
        Ok(RunOutput {
            value: flops / kernel_ns,
            metric: Metric::GFlopsPerSec,
            verify,
            kernel_ns,
            wall_ns,
            launches,
            stats: launch.report.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_compiler::Api;
    use gpucmp_ptx::InstClass;
    use gpucmp_runtime::{Cuda, OpenCl};
    use gpucmp_sim::DeviceSpec;

    #[test]
    fn forward_fft_matches_reference_on_both_apis() {
        let b = Fft::new(Scale::Quick);
        let mut cuda = Cuda::new(DeviceSpec::gtx280()).unwrap();
        let rc = b.run(&mut cuda).unwrap();
        assert!(rc.verify.is_pass(), "{:?}", rc.verify);
        let mut ocl = OpenCl::create_any(DeviceSpec::gtx480());
        let ro = b.run(&mut ocl).unwrap();
        assert!(ro.verify.is_pass(), "{:?}", ro.verify);
    }

    #[test]
    fn inverse_round_trips() {
        // forward then inverse must reproduce the input
        let fwd = Fft::new(Scale::Quick);
        let inv = Fft::new(Scale::Quick).inverse();
        let total = fwd.batches as usize * N;
        let mut r = rng(0x17);
        let re: Vec<f32> = (0..total).map(|_| r.gen_range(-1.0..1.0f32)).collect();
        let im: Vec<f32> = (0..total).map(|_| r.gen_range(-1.0..1.0f32)).collect();
        let (fr, fi) = fwd.reference(&re, &im);
        let (br, bi) = inv.reference(&fr, &fi);
        for i in 0..total {
            assert!((br[i] - re[i]).abs() < 1e-3, "re {i}");
            assert!((bi[i] - im[i]).abs() < 1e-3, "im {i}");
        }
    }

    #[test]
    fn table5_shape_cuda_vs_opencl() {
        // Table V: the OpenCL front-end emits far more arithmetic, logic,
        // shift and flow-control instructions; the CUDA front-end is
        // mov-heavy and spills more to local; the global traffic and
        // barrier counts are identical.
        let def = Fft::new(Scale::Quick).kernel();
        let c = gpucmp_compiler::compile(&def, Api::Cuda, 124).unwrap();
        let o = gpucmp_compiler::compile(&def, Api::OpenCl, 124).unwrap();
        let (cs, os) = (&c.ptx_stats, &o.ptx_stats);
        assert!(
            os.class_total(InstClass::Arithmetic) > cs.class_total(InstClass::Arithmetic),
            "arith: OpenCL {} vs CUDA {}",
            os.class_total(InstClass::Arithmetic),
            cs.class_total(InstClass::Arithmetic)
        );
        let o_bits = os.class_total(InstClass::Logic) + os.class_total(InstClass::Shift);
        let c_bits = cs.class_total(InstClass::Logic) + cs.class_total(InstClass::Shift);
        assert!(o_bits > c_bits, "bits: OpenCL {o_bits} vs CUDA {c_bits}");
        assert!(
            cs.count("mov") > os.count("mov"),
            "mov: CUDA {} vs OpenCL {}",
            cs.count("mov"),
            os.count("mov")
        );
        // identical time-consuming instructions
        assert_eq!(cs.ld_global(), os.ld_global());
        assert_eq!(cs.st_global(), os.st_global());
        assert_eq!(cs.count("bar"), os.count("bar"));
    }

    #[test]
    fn opencl_fft_is_slower_the_papers_biggest_gap() {
        // Fig. 3: FFT shows the largest PR gap, caused by the front-end
        // difference alone (identical source).
        let b = Fft::new(Scale::Paper);
        let mut cuda = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let pc = b.run(&mut cuda).unwrap().value;
        let mut ocl = OpenCl::create_any(DeviceSpec::gtx480());
        let po = b.run(&mut ocl).unwrap().value;
        let pr = po / pc;
        assert!(pr < 0.95, "FFT PR should be well below 1: {pr}");
        assert!(pr > 0.3, "but not absurdly so: {pr}");
    }
}
