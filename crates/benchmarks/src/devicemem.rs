//! DeviceMemory — SHOC's device-memory bandwidth synthetic (paper Fig. 1).
//!
//! Reads global memory in a fully coalesced grid-stride pattern (work-group
//! size 256, as the paper fixes it) and reports achieved GB/s over the
//! bytes nominally accessed.

use crate::common::{check_f32, verdict, Benchmark, Metric, RunOutput, Scale, Window};
use gpucmp_compiler::{global_id_x, global_size_x, ld_global, DslKernel, Expr, KernelDef, Unroll};
use gpucmp_ptx::Ty;
use gpucmp_runtime::{Gpu, GpuExt, RtError};
use gpucmp_sim::LaunchConfig;

/// Unrolled reads per outer iteration.
const READS_PER_ITER: usize = 16;

/// DeviceMemory read-bandwidth benchmark.
#[derive(Clone, Debug)]
pub struct DeviceMemory {
    /// Thread blocks.
    pub blocks: u32,
    /// Threads per block (the paper fixes 256).
    pub block_size: u32,
    /// Outer iterations (each reads `READS_PER_ITER` strided elements).
    pub iters: i32,
}

impl DeviceMemory {
    /// Construct with the given scale.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Quick => DeviceMemory {
                blocks: 32,
                block_size: 256,
                iters: 2,
            },
            Scale::Paper => DeviceMemory {
                blocks: 240,
                block_size: 256,
                iters: 16,
            },
        }
    }

    /// Total f32 elements the kernel reads.
    pub fn elements_read(&self) -> u64 {
        self.blocks as u64 * self.block_size as u64 * self.iters as u64 * READS_PER_ITER as u64
    }

    fn kernel(&self) -> KernelDef {
        let mut k = DslKernel::new("read_global_coalesced");
        let input = k.param_ptr("input");
        let output = k.param_ptr("output");
        let iters = k.param("iters", Ty::S32);
        let gid = k.let_(Ty::S32, global_id_x());
        let gsize = k.let_(Ty::S32, global_size_x());
        let acc = k.let_(Ty::F32, 0.0f32);
        let idx = k.let_(Ty::S32, gid);
        k.for_(0i32, iters, 1, Unroll::None, |k, _t| {
            for _ in 0..READS_PER_ITER {
                k.assign(
                    acc,
                    Expr::from(acc) + ld_global(input.clone(), idx, Ty::F32),
                );
                k.assign(idx, Expr::from(idx) + gsize);
            }
        });
        k.st_global(output, gid, Ty::F32, acc);
        k.finish()
    }
}

impl Benchmark for DeviceMemory {
    fn name(&self) -> &'static str {
        "DeviceMemory"
    }

    fn metric(&self) -> Metric {
        Metric::GBPerSec
    }

    fn run(&self, gpu: &mut dyn Gpu) -> Result<RunOutput, RtError> {
        let threads = (self.blocks * self.block_size) as usize;
        let n = threads * self.iters as usize * READS_PER_ITER;
        let def = self.kernel();
        let h = gpu.build(&def)?;
        let input = gpu.alloc::<f32>(n)?;
        let output = gpu.alloc::<f32>(threads)?;
        // A compressible pattern keeps the CPU reference cheap: in[i] = 1.0.
        gpu.h2d_buf(&input, &vec![1.0f32; n])?;
        let cfg = LaunchConfig::builder()
            .grid(self.blocks)
            .block(self.block_size)
            .arg_ptr(input)
            .arg_ptr(output)
            .arg_i32(self.iters);
        let w = Window::open(gpu);
        let out = gpu.launch(h, cfg)?;
        let (wall_ns, kernel_ns, launches) = w.close(gpu);
        let got = gpu.d2h_buf(&output)?;
        let expect = (self.iters as usize * READS_PER_ITER) as f32;
        let want = vec![expect; threads];
        let verify = verdict(check_f32(&got, &want, 1e-5));
        let bytes = self.elements_read() * 4;
        let gbs = bytes as f64 / kernel_ns; // bytes/ns == GB/s
        Ok(RunOutput {
            value: gbs,
            metric: Metric::GBPerSec,
            verify,
            kernel_ns,
            wall_ns,
            launches,
            stats: out.report.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_runtime::{Cuda, OpenCl};
    use gpucmp_sim::DeviceSpec;

    #[test]
    fn bandwidth_verifies_and_is_positive() {
        let b = DeviceMemory::new(Scale::Quick);
        let mut cuda = Cuda::new(DeviceSpec::gtx280()).unwrap();
        let r = b.run(&mut cuda).unwrap();
        assert!(r.verify.is_pass(), "{:?}", r.verify);
        assert!(r.value > 1.0, "GB/s = {}", r.value);
    }

    #[test]
    fn opencl_matches_or_beats_cuda_on_bandwidth() {
        // Fig. 1: OpenCL achieved slightly higher bandwidth than CUDA.
        let b = DeviceMemory::new(Scale::Paper);
        for dev in [DeviceSpec::gtx280(), DeviceSpec::gtx480()] {
            let mut cuda = Cuda::new(dev.clone()).unwrap();
            let rc = b.run(&mut cuda).unwrap();
            let mut ocl = OpenCl::create_any(dev.clone());
            let ro = b.run(&mut ocl).unwrap();
            let pr = ro.value / rc.value;
            assert!(pr >= 0.99, "{}: PR = {pr}", dev.name);
            assert!(pr < 1.2, "{}: PR = {pr}", dev.name);
        }
    }

    #[test]
    fn achieved_fraction_matches_paper_band() {
        // Fig. 1: OpenCL reaches ~68.6% of theoretical peak on GTX280 and
        // ~87.7% on GTX480.
        let b = DeviceMemory::new(Scale::Paper);
        let mut o280 = OpenCl::create_any(DeviceSpec::gtx280());
        let f280 = b.run(&mut o280).unwrap().value / 141.7;
        assert!((0.55..0.8).contains(&f280), "GTX280 fraction {f280}");
        let mut o480 = OpenCl::create_any(DeviceSpec::gtx480());
        let f480 = b.run(&mut o480).unwrap().value / 177.4;
        assert!((0.75..0.95).contains(&f480), "GTX480 fraction {f480}");
    }
}
