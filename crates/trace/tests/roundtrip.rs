//! End-to-end validation of the chrome-trace export: trace a real
//! benchmark session, serialise it, and parse the text back — the
//! round-trip is the machine check that the emitted file is valid JSON
//! with the Trace Event Format structure Perfetto expects.

use gpucmp_benchmarks::common::{Benchmark, Scale};
use gpucmp_benchmarks::sobel::Sobel;
use gpucmp_runtime::{Cuda, Gpu, GpuExt, SessionEvent};
use gpucmp_sim::DeviceSpec;
use gpucmp_trace::{chrome_trace, parse, Json};

fn traced_session() -> (DeviceSpec, Vec<SessionEvent>) {
    let device = DeviceSpec::gtx480();
    let mut gpu = Cuda::new(device.clone()).expect("NVIDIA device");
    gpu.set_tracing(true);
    Sobel::new(Scale::Quick).run(&mut gpu).expect("Sobel run");
    (device, gpu.trace_events().to_vec())
}

#[test]
fn chrome_trace_round_trips_through_text() {
    let (device, events) = traced_session();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, SessionEvent::Launch { .. })),
        "traced session must contain launches"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, SessionEvent::Transfer { .. })),
        "traced session must contain transfers"
    );

    let doc = chrome_trace(&device, &events);
    let text = doc.to_text();
    let parsed = parse(&text).expect("emitted trace must be valid JSON");

    // Top-level Trace Event Format structure.
    assert_eq!(
        parsed.get("displayTimeUnit").and_then(Json::as_str),
        Some("ns")
    );
    assert_eq!(
        parsed
            .get("otherData")
            .and_then(|o| o.get("device"))
            .and_then(Json::as_str),
        Some("GTX480")
    );
    let tev = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!tev.is_empty());

    // Every event has the mandatory fields; phased events have timestamps.
    let mut phases = std::collections::BTreeSet::new();
    for e in tev {
        let ph = e.get("ph").and_then(Json::as_str).expect("event ph");
        phases.insert(ph.to_string());
        assert!(e.get("name").and_then(Json::as_str).is_some());
        assert!(e.get("pid").and_then(Json::as_i64).is_some());
        match ph {
            "X" => {
                let ts = e.get("ts").and_then(Json::as_f64).expect("slice ts");
                let dur = e.get("dur").and_then(Json::as_f64).expect("slice dur");
                assert!(ts >= 0.0 && dur > 0.0, "ts={ts} dur={dur}");
            }
            "C" => {
                assert!(e.get("ts").and_then(Json::as_f64).is_some());
                assert!(matches!(e.get("args"), Some(Json::Obj(_))));
            }
            "M" => {
                assert!(matches!(e.get("args"), Some(Json::Obj(_))));
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(
        phases.contains("M") && phases.contains("X") && phases.contains("C"),
        "trace must contain metadata, slices and counters, got {phases:?}"
    );

    // The kernel slices land on named CU tracks within the device.
    let cu_tracks = tev
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::as_str) == Some("M")
                && e.get("name").and_then(Json::as_str) == Some("thread_name")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .is_some_and(|n| n.starts_with("CU "))
        })
        .count();
    assert!(cu_tracks > 0 && cu_tracks <= device.compute_units as usize);

    // Slices within one track never overlap (the timeline is physical).
    let mut by_tid: std::collections::BTreeMap<i64, Vec<(f64, f64)>> = Default::default();
    for e in tev {
        if e.get("ph").and_then(Json::as_str) == Some("X") {
            let tid = e.get("tid").and_then(Json::as_i64).unwrap();
            let ts = e.get("ts").and_then(Json::as_f64).unwrap();
            let dur = e.get("dur").and_then(Json::as_f64).unwrap();
            by_tid.entry(tid).or_default().push((ts, ts + dur));
        }
    }
    for (tid, mut spans) in by_tid {
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in spans.windows(2) {
            assert!(
                w[1].0 >= w[0].1 - 1e-9,
                "overlapping slices on tid {tid}: {w:?}"
            );
        }
    }
}

#[test]
fn memcheck_faults_export_as_instant_events_on_cu_tracks() {
    use gpucmp_compiler::{global_id_x, DslKernel};
    use gpucmp_ptx::Ty;
    use gpucmp_sim::LaunchConfig;

    // An unguarded store driven past its allocation under memcheck: the
    // launch completes, the faults land in the trace stream.
    let device = DeviceSpec::gtx480();
    let mut gpu = Cuda::new(device.clone()).expect("NVIDIA device");
    gpu.set_tracing(true);
    gpu.set_memcheck(true);
    let mut k = DslKernel::new("unguarded_fill");
    let out = k.param_ptr("out");
    let gid = k.let_(Ty::S32, global_id_x());
    k.st_global(out.clone(), gid, Ty::F32, 1.0f32);
    let h = gpu.build(&k.finish()).unwrap();
    let buf = gpu.malloc(32 * 4).unwrap();
    gpu.launch(h, LaunchConfig::new(1u32, 64u32).arg_ptr(buf))
        .unwrap();

    let doc = chrome_trace(&device, gpu.trace_events());
    let parsed = parse(&doc.to_text()).expect("valid JSON");
    let tev = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
    let faults: Vec<_> = tev
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
        .collect();
    assert_eq!(faults.len(), 32, "one instant per recorded fault");
    for f in &faults {
        assert_eq!(
            f.get("name").and_then(Json::as_str),
            Some("FAULT unguarded_fill")
        );
        assert_eq!(f.get("s").and_then(Json::as_str), Some("t"));
        let tid = f.get("tid").and_then(Json::as_i64).unwrap();
        assert!(tid >= 10, "fault lands on a CU track, got tid {tid}");
        let args = f.get("args").expect("fault args");
        assert!(args
            .get("fault")
            .and_then(Json::as_str)
            .is_some_and(|d| d.contains("out-of-bounds")));
        assert!(args.get("pc").and_then(Json::as_f64).is_some());
        assert!(args
            .get("thread")
            .and_then(Json::as_str)
            .is_some_and(|t| t.contains(',')));
    }
    // The faulting CU's track is named even though only one block ran.
    let first_tid = faults[0].get("tid").and_then(Json::as_i64).unwrap();
    assert!(tev.iter().any(|e| {
        e.get("name").and_then(Json::as_str) == Some("thread_name")
            && e.get("tid").and_then(Json::as_i64) == Some(first_tid)
    }));
}

#[test]
fn explicit_streams_get_their_own_tracks_with_visible_overlap() {
    use gpucmp_benchmarks::mxm::MxM;

    // A two-stream MxM run: every transfer and launch rides an explicit
    // stream, so the trace must carry "Stream N" tracks instead of the
    // per-engine ones.
    let device = DeviceSpec::gtx480();
    let mut gpu = Cuda::new(device.clone()).expect("NVIDIA device");
    gpu.set_tracing(true);
    MxM::new(Scale::Paper)
        .with_streams(true)
        .run(&mut gpu)
        .expect("MxM run");

    let doc = chrome_trace(&device, gpu.trace_events());
    let parsed = parse(&doc.to_text()).expect("valid JSON");
    let tev = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();

    // Both stream tracks are named.
    for name in ["Stream 1", "Stream 2"] {
        assert!(
            tev.iter().any(|e| {
                e.get("ph").and_then(Json::as_str) == Some("M")
                    && e.get("name").and_then(Json::as_str) == Some("thread_name")
                    && e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        == Some(name)
            }),
            "missing {name} track"
        );
    }

    // Collect slices per stream track (tid >= 100).
    let mut by_tid: std::collections::BTreeMap<i64, Vec<(f64, f64)>> = Default::default();
    for e in tev {
        if e.get("ph").and_then(Json::as_str) == Some("X") {
            let tid = e.get("tid").and_then(Json::as_i64).unwrap();
            if tid >= 100 {
                let ts = e.get("ts").and_then(Json::as_f64).unwrap();
                let dur = e.get("dur").and_then(Json::as_f64).unwrap();
                by_tid.entry(tid).or_default().push((ts, ts + dur));
            }
        }
    }
    assert_eq!(by_tid.len(), 2, "slices on exactly two stream tracks");
    // Each stream's kernel slice is present (launch slices carry the
    // kernel name on stream tracks).
    let kernel_slices = tev
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("name").and_then(Json::as_str) == Some("matrix_mul")
        })
        .count();
    assert_eq!(kernel_slices, 2, "one kernel slice per panel");

    // Within a track the timeline stays physical (no stacked slices)...
    for (tid, spans) in by_tid.iter_mut() {
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in spans.windows(2) {
            assert!(
                w[1].0 >= w[0].1 - 1e-9,
                "overlapping slices on tid {tid}: {w:?}"
            );
        }
    }
    // ...but across the two tracks the pipeline overlap is visible:
    // some slice on stream 1 runs concurrently with one on stream 2.
    let (a, b) = {
        let mut it = by_tid.values();
        (it.next().unwrap(), it.next().unwrap())
    };
    let overlap = a
        .iter()
        .any(|&(s1, e1)| b.iter().any(|&(s2, e2)| s1 < e2 && s2 < e1));
    assert!(overlap, "streams must visibly overlap: {a:?} vs {b:?}");

    // Stream launches don't paint CU tracks or drive the counters —
    // those stay reserved for default-stream work.
    assert!(!tev.iter().any(|e| {
        let tid = e.get("tid").and_then(Json::as_i64).unwrap_or(-1);
        e.get("ph").and_then(Json::as_str) == Some("X") && (10..100).contains(&tid)
    }));
    assert!(!tev
        .iter()
        .any(|e| e.get("ph").and_then(Json::as_str) == Some("C")));
}

#[test]
fn untraced_sessions_record_nothing() {
    let device = DeviceSpec::gtx480();
    let mut gpu = Cuda::new(device.clone()).expect("NVIDIA device");
    Sobel::new(Scale::Quick).run(&mut gpu).expect("Sobel run");
    assert!(gpu.trace_events().is_empty(), "tracing is strictly opt-in");
    // An event-less trace is still a valid document.
    let doc = chrome_trace(&device, gpu.trace_events());
    let parsed = parse(&doc.to_text()).unwrap();
    assert!(parsed.get("traceEvents").and_then(Json::as_arr).is_some());
}

#[test]
fn multi_stream_export_gets_one_process_per_session() {
    use gpucmp_trace::chrome_trace_multi;
    let (device, events) = traced_session();
    let streams = vec![
        ("acme / session 1".to_string(), events.clone()),
        ("umbrella / session 2".to_string(), events),
    ];
    let doc = chrome_trace_multi(&device, &streams);
    let parsed = parse(&doc.to_text()).expect("multi trace must be valid JSON");
    let tev = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");

    // Each stream becomes its own chrome process, named after the
    // (tenant, session) pair; real (non-meta) events land on both pids.
    let mut names = Vec::new();
    let mut pids = std::collections::BTreeSet::new();
    for e in tev {
        let pid = e.get("pid").and_then(Json::as_f64).expect("pid") as i64;
        if e.get("name").and_then(Json::as_str) == Some("process_name") {
            let n = e
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
                .expect("process_name value");
            names.push((pid, n.to_string()));
        }
        if e.get("ph").and_then(Json::as_str) == Some("X") {
            pids.insert(pid);
        }
    }
    names.sort();
    assert_eq!(
        names,
        vec![
            (1, "acme / session 1".to_string()),
            (2, "umbrella / session 2".to_string()),
        ]
    );
    assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![1, 2]);
}
