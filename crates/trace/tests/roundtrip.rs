//! End-to-end validation of the chrome-trace export: trace a real
//! benchmark session, serialise it, and parse the text back — the
//! round-trip is the machine check that the emitted file is valid JSON
//! with the Trace Event Format structure Perfetto expects.

use gpucmp_benchmarks::common::{Benchmark, Scale};
use gpucmp_benchmarks::sobel::Sobel;
use gpucmp_runtime::{Cuda, Gpu, SessionEvent};
use gpucmp_sim::DeviceSpec;
use gpucmp_trace::{chrome_trace, parse, Json};

fn traced_session() -> (DeviceSpec, Vec<SessionEvent>) {
    let device = DeviceSpec::gtx480();
    let mut gpu = Cuda::new(device.clone()).expect("NVIDIA device");
    gpu.set_tracing(true);
    Sobel::new(Scale::Quick).run(&mut gpu).expect("Sobel run");
    (device, gpu.trace_events().to_vec())
}

#[test]
fn chrome_trace_round_trips_through_text() {
    let (device, events) = traced_session();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, SessionEvent::Launch { .. })),
        "traced session must contain launches"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, SessionEvent::Transfer { .. })),
        "traced session must contain transfers"
    );

    let doc = chrome_trace(&device, &events);
    let text = doc.to_text();
    let parsed = parse(&text).expect("emitted trace must be valid JSON");

    // Top-level Trace Event Format structure.
    assert_eq!(
        parsed.get("displayTimeUnit").and_then(Json::as_str),
        Some("ns")
    );
    assert_eq!(
        parsed
            .get("otherData")
            .and_then(|o| o.get("device"))
            .and_then(Json::as_str),
        Some("GTX480")
    );
    let tev = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!tev.is_empty());

    // Every event has the mandatory fields; phased events have timestamps.
    let mut phases = std::collections::BTreeSet::new();
    for e in tev {
        let ph = e.get("ph").and_then(Json::as_str).expect("event ph");
        phases.insert(ph.to_string());
        assert!(e.get("name").and_then(Json::as_str).is_some());
        assert!(e.get("pid").and_then(Json::as_i64).is_some());
        match ph {
            "X" => {
                let ts = e.get("ts").and_then(Json::as_f64).expect("slice ts");
                let dur = e.get("dur").and_then(Json::as_f64).expect("slice dur");
                assert!(ts >= 0.0 && dur > 0.0, "ts={ts} dur={dur}");
            }
            "C" => {
                assert!(e.get("ts").and_then(Json::as_f64).is_some());
                assert!(matches!(e.get("args"), Some(Json::Obj(_))));
            }
            "M" => {
                assert!(matches!(e.get("args"), Some(Json::Obj(_))));
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(
        phases.contains("M") && phases.contains("X") && phases.contains("C"),
        "trace must contain metadata, slices and counters, got {phases:?}"
    );

    // The kernel slices land on named CU tracks within the device.
    let cu_tracks = tev
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::as_str) == Some("M")
                && e.get("name").and_then(Json::as_str) == Some("thread_name")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .is_some_and(|n| n.starts_with("CU "))
        })
        .count();
    assert!(cu_tracks > 0 && cu_tracks <= device.compute_units as usize);

    // Slices within one track never overlap (the timeline is physical).
    let mut by_tid: std::collections::BTreeMap<i64, Vec<(f64, f64)>> = Default::default();
    for e in tev {
        if e.get("ph").and_then(Json::as_str) == Some("X") {
            let tid = e.get("tid").and_then(Json::as_i64).unwrap();
            let ts = e.get("ts").and_then(Json::as_f64).unwrap();
            let dur = e.get("dur").and_then(Json::as_f64).unwrap();
            by_tid.entry(tid).or_default().push((ts, ts + dur));
        }
    }
    for (tid, mut spans) in by_tid {
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in spans.windows(2) {
            assert!(
                w[1].0 >= w[0].1 - 1e-9,
                "overlapping slices on tid {tid}: {w:?}"
            );
        }
    }
}

#[test]
fn untraced_sessions_record_nothing() {
    let device = DeviceSpec::gtx480();
    let mut gpu = Cuda::new(device.clone()).expect("NVIDIA device");
    Sobel::new(Scale::Quick).run(&mut gpu).expect("Sobel run");
    assert!(gpu.trace_events().is_empty(), "tracing is strictly opt-in");
    // An event-less trace is still a valid document.
    let doc = chrome_trace(&device, gpu.trace_events());
    let parsed = parse(&doc.to_text()).unwrap();
    assert!(parsed.get("traceEvents").and_then(Json::as_arr).is_some());
}
