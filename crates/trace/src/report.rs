//! The machine-readable bench report (`BENCH_<timestamp>.json`).
//!
//! One [`BenchRun`] per (benchmark, device, API) triple carrying the
//! measured metric, virtual times, and the full per-run counter set; one
//! [`PrEntry`] per (benchmark, device) pair carrying the paper's PR
//! (Eq. 1) plus the *dominant counter* — the counter whose CUDA/OpenCL
//! divergence best explains the PR deviation. The CI gate
//! (`crates/bench/src/gate.rs`) parses this file and fails the build when
//! a paper-shape invariant regresses.

use crate::json::{parse, Json, JsonError};
use gpucmp_sim::CounterSet;

/// Report schema version; bump on breaking layout changes. Version 2
/// added per-run fault status (`status`/`fault`/`attempts`) for graceful
/// campaign degradation; version 3 added incremental-campaign support
/// (`input_hash`/`cached` per run) so unchanged cells can be reused from
/// a previous report; version 4 added the optional `sim_speed` matrix
/// (host wall-clock per execution tier). Older documents still parse
/// (status defaults to `"ok"`, `input_hash` to empty, `cached` to false,
/// `sim_speed` to empty).
pub const SCHEMA_VERSION: i64 = 4;
/// Oldest schema version [`BenchReport::from_text`] still accepts.
pub const MIN_SCHEMA_VERSION: i64 = 1;

/// [`BenchRun::status`] of a run that completed and verified.
pub const RUN_OK: &str = "ok";
/// [`BenchRun::status`] of a run skipped after exhausting its fault
/// retries (the fault text is in [`BenchRun::fault`]).
pub const RUN_FAULT_SKIPPED: &str = "fault-skipped";

/// One benchmark execution on one device through one API.
#[derive(Clone, Debug)]
pub struct BenchRun {
    /// Benchmark name (paper Table II).
    pub bench: String,
    /// Device name (paper Table IV).
    pub device: String,
    /// API name (`"CUDA"` / `"OpenCL"`).
    pub api: String,
    /// Metric value in `unit`.
    pub value: f64,
    /// Metric unit.
    pub unit: String,
    /// Device output matched the CPU reference.
    pub verified: bool,
    /// Virtual wall time of the measured window, ns.
    pub wall_ns: f64,
    /// In-kernel virtual time, ns.
    pub kernel_ns: f64,
    /// Kernel launches in the window.
    pub launches: u64,
    /// Simulated issue cycles (the "sim-cycles" of the run).
    pub sim_cycles: f64,
    /// Full flat counter set of the merged run.
    pub counters: CounterSet,
    /// Run outcome: [`RUN_OK`] or [`RUN_FAULT_SKIPPED`].
    pub status: String,
    /// Description of the final fault, for skipped runs.
    pub fault: Option<String>,
    /// Attempts consumed (1 = first try succeeded; >1 = bounded retry
    /// recovered or, for skipped runs, every retry failed).
    pub attempts: u32,
    /// Hex fingerprint of everything that determines this cell's numbers
    /// (benchmark, device, API, scale, fault settings, model revision).
    /// Empty in pre-v3 reports — such rows never match a cache lookup.
    pub input_hash: String,
    /// Whether this row was reused from a previous report (same
    /// `input_hash`) instead of being re-executed.
    pub cached: bool,
}

impl BenchRun {
    /// Whether this run completed (vs. being fault-skipped).
    pub fn is_ok(&self) -> bool {
        self.status == RUN_OK
    }
}

/// The PR of one benchmark on one device, with attribution.
#[derive(Clone, Debug)]
pub struct PrEntry {
    /// Benchmark name.
    pub bench: String,
    /// Device name.
    pub device: String,
    /// PR = Perf_OpenCL / Perf_CUDA (Eq. 1).
    pub pr: f64,
    /// The counter that diverges most between the two APIs' runs — the
    /// machine-derived version of EXPERIMENTS.md's prose attributions.
    pub dominant_counter: String,
}

/// Host wall-clock of one benchmark simulated under each execution tier
/// (interpreter / pre-decoded / fused). The simulated reports are
/// bit-identical across tiers; only the host time to produce them moves.
#[derive(Clone, Debug)]
pub struct SimSpeed {
    /// Benchmark name.
    pub bench: String,
    /// Host execution+merge time under the interpreter tier, ns.
    pub interp_ns: u64,
    /// Host execution+merge time under the pre-decoded tier, ns.
    pub decoded_ns: u64,
    /// Host execution+merge time under the fused tier, ns.
    pub fused_ns: u64,
}

impl SimSpeed {
    /// Interpreter / fused host wall-clock ratio.
    pub fn fused_speedup(&self) -> f64 {
        self.interp_ns as f64 / (self.fused_ns.max(1)) as f64
    }

    /// Interpreter / decoded host wall-clock ratio.
    pub fn decoded_speedup(&self) -> f64 {
        self.interp_ns as f64 / (self.decoded_ns.max(1)) as f64
    }
}

/// A whole benchmark campaign, serialisable to/from `BENCH_*.json`.
#[derive(Clone, Debug, Default)]
pub struct BenchReport {
    /// Problem-size scale the campaign ran at (`"quick"` / `"paper"`).
    pub scale: String,
    /// Seed of the fault-injection plan the campaign ran under, if any.
    /// The gate only *accepts* fault-skipped runs when this is set: a
    /// skip without a declared injection campaign is a regression.
    pub fault_seed: Option<u64>,
    /// Per-run rows.
    pub runs: Vec<BenchRun>,
    /// Per-(bench, device) PR rows.
    pub prs: Vec<PrEntry>,
    /// Host-side tier speed matrix (schema v4, optional — empty when the
    /// campaign did not measure simulator speed).
    pub sim_speed: Vec<SimSpeed>,
}

impl BenchReport {
    /// Whether any run was fault-skipped: the report is *partial but
    /// valid* — the gate downgrades missing data caused by faults to a
    /// warning instead of a regression.
    pub fn is_partial(&self) -> bool {
        self.runs.iter().any(|r| !r.is_ok())
    }

    /// Number of runs reused from a previous report's cache.
    pub fn cache_hits(&self) -> usize {
        self.runs.iter().filter(|r| r.cached).count()
    }

    /// Find a run.
    pub fn run(&self, bench: &str, device: &str, api: &str) -> Option<&BenchRun> {
        self.runs
            .iter()
            .find(|r| r.bench == bench && r.device == device && r.api == api)
    }

    /// Find a PR entry.
    pub fn pr(&self, bench: &str, device: &str) -> Option<&PrEntry> {
        self.prs
            .iter()
            .find(|p| p.bench == bench && p.device == device)
    }

    /// Serialise to a JSON document.
    pub fn to_json(&self) -> Json {
        let runs = self
            .runs
            .iter()
            .map(|r| {
                Json::obj([
                    ("bench", r.bench.as_str().into()),
                    ("device", r.device.as_str().into()),
                    ("api", r.api.as_str().into()),
                    ("value", Json::Num(r.value)),
                    ("unit", r.unit.as_str().into()),
                    ("verified", r.verified.into()),
                    ("wall_ns", Json::Num(r.wall_ns)),
                    ("kernel_ns", Json::Num(r.kernel_ns)),
                    ("launches", r.launches.into()),
                    ("sim_cycles", Json::Num(r.sim_cycles)),
                    ("status", r.status.as_str().into()),
                    (
                        "fault",
                        match &r.fault {
                            Some(fx) => fx.as_str().into(),
                            None => Json::Null,
                        },
                    ),
                    ("attempts", (r.attempts as u64).into()),
                    ("input_hash", r.input_hash.as_str().into()),
                    ("cached", r.cached.into()),
                    (
                        "counters",
                        Json::Obj(
                            r.counters
                                .iter()
                                .map(|(n, v)| (n.to_string(), Json::Num(v)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let prs = self
            .prs
            .iter()
            .map(|p| {
                Json::obj([
                    ("bench", p.bench.as_str().into()),
                    ("device", p.device.as_str().into()),
                    ("pr", Json::Num(p.pr)),
                    ("dominant_counter", p.dominant_counter.as_str().into()),
                ])
            })
            .collect();
        let sim_speed = self
            .sim_speed
            .iter()
            .map(|s| {
                Json::obj([
                    ("bench", s.bench.as_str().into()),
                    ("interp_ns", s.interp_ns.into()),
                    ("decoded_ns", s.decoded_ns.into()),
                    ("fused_ns", s.fused_ns.into()),
                ])
            })
            .collect();
        Json::obj([
            ("schema", Json::Int(SCHEMA_VERSION)),
            ("scale", self.scale.as_str().into()),
            (
                "fault_seed",
                match self.fault_seed {
                    Some(seed) => seed.into(),
                    None => Json::Null,
                },
            ),
            ("runs", Json::Arr(runs)),
            ("prs", Json::Arr(prs)),
            ("sim_speed", Json::Arr(sim_speed)),
        ])
    }

    /// Serialise to JSON text.
    pub fn to_text(&self) -> String {
        self.to_json().to_text()
    }

    /// Parse back from JSON text (the gate's entry point).
    pub fn from_text(text: &str) -> Result<BenchReport, JsonError> {
        let doc = parse(text)?;
        let bad = |msg: &str| JsonError {
            msg: msg.to_string(),
            at: 0,
        };
        let schema = doc
            .get("schema")
            .and_then(Json::as_i64)
            .ok_or_else(|| bad("missing schema"))?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&schema) {
            return Err(bad(&format!("unsupported schema version {schema}")));
        }
        let scale = doc
            .get("scale")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let fault_seed = doc
            .get("fault_seed")
            .and_then(Json::as_f64)
            .map(|v| v as u64);
        let mut runs = Vec::new();
        for r in doc
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing runs"))?
        {
            let field_str = |k: &str| {
                r.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| bad(&format!("run missing '{k}'")))
            };
            let field_num = |k: &str| {
                r.get(k)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad(&format!("run missing '{k}'")))
            };
            let mut counters = CounterSet::new();
            if let Some(Json::Obj(members)) = r.get("counters") {
                for (n, v) in members {
                    counters.push(n.clone(), v.as_f64().unwrap_or(0.0));
                }
            }
            runs.push(BenchRun {
                bench: field_str("bench")?,
                device: field_str("device")?,
                api: field_str("api")?,
                value: field_num("value")?,
                unit: field_str("unit")?,
                verified: r.get("verified").and_then(Json::as_bool).unwrap_or(false),
                wall_ns: field_num("wall_ns")?,
                kernel_ns: field_num("kernel_ns")?,
                launches: field_num("launches")? as u64,
                sim_cycles: field_num("sim_cycles")?,
                counters,
                // schema-1 reports predate fault status: every row is ok
                status: r
                    .get("status")
                    .and_then(Json::as_str)
                    .unwrap_or(RUN_OK)
                    .to_string(),
                fault: r.get("fault").and_then(Json::as_str).map(str::to_string),
                attempts: r.get("attempts").and_then(Json::as_f64).unwrap_or(1.0) as u32,
                // schema-1/2 reports predate incremental campaigns: no
                // fingerprint (never cache-matches), not cached
                input_hash: r
                    .get("input_hash")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                cached: r.get("cached").and_then(Json::as_bool).unwrap_or(false),
            });
        }
        let mut prs = Vec::new();
        for p in doc
            .get("prs")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing prs"))?
        {
            prs.push(PrEntry {
                bench: p
                    .get("bench")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("pr missing 'bench'"))?
                    .to_string(),
                device: p
                    .get("device")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("pr missing 'device'"))?
                    .to_string(),
                pr: p
                    .get("pr")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad("pr missing 'pr'"))?,
                dominant_counter: p
                    .get("dominant_counter")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            });
        }
        // pre-v4 reports predate the tier speed matrix: empty
        let mut sim_speed = Vec::new();
        if let Some(entries) = doc.get("sim_speed").and_then(Json::as_arr) {
            for s in entries {
                let num = |k: &str| s.get(k).and_then(Json::as_f64).unwrap_or(0.0) as u64;
                sim_speed.push(SimSpeed {
                    bench: s
                        .get("bench")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("sim_speed missing 'bench'"))?
                        .to_string(),
                    interp_ns: num("interp_ns"),
                    decoded_ns: num("decoded_ns"),
                    fused_ns: num("fused_ns"),
                });
            }
        }
        Ok(BenchReport {
            scale,
            fault_seed,
            runs,
            prs,
            sim_speed,
        })
    }
}

/// Pick the counter that best explains a CUDA-vs-OpenCL performance gap:
/// the candidate with the largest absolute log-ratio between the two
/// runs' values. `launch_overhead_ns` (wall minus kernel time) enters the
/// comparison as a pseudo-counter, which is what attributes BFS-like
/// many-small-launch benchmarks to API submit cost.
pub fn dominant_counter(
    cuda: &CounterSet,
    cuda_wall_ns: f64,
    cuda_kernel_ns: f64,
    opencl: &CounterSet,
    opencl_wall_ns: f64,
    opencl_kernel_ns: f64,
) -> String {
    // Attribution vocabulary: counters that *cause* time, not the time
    // terms themselves.
    const CANDIDATES: &[&str] = &[
        "issue_cycles",
        "gmem_transactions",
        "dram_read_bytes",
        "dram_write_bytes",
        "max_partition_bytes",
        "l2_touched_bytes",
        "shared_cycles",
        "shared_conflict_cycles",
        "const_serializations",
        "const_misses",
        "tex_misses",
        "l1_misses",
        "l2_misses",
        "divergent_branches",
        "warp_instructions",
    ];
    let mut best = ("comparable", 0.0f64);
    let mut consider = |name: &'static str, c: f64, o: f64| {
        // Ignore counters absent on both sides; a one-sided zero is a
        // strong signal (e.g. texture use only in the CUDA dialect).
        if c <= 0.0 && o <= 0.0 {
            return;
        }
        let score = ((o.max(1e-9)) / (c.max(1e-9))).ln().abs();
        if score > best.1 {
            best = (name, score);
        }
    };
    for &name in CANDIDATES {
        consider(
            name,
            cuda.get(name).unwrap_or(0.0),
            opencl.get(name).unwrap_or(0.0),
        );
    }
    // The submit-cost constants differ ~6x between the APIs, so the raw
    // overhead ratio would win whenever no hardware counter diverges
    // harder. Only let it compete when overhead is actually a material
    // share of someone's wall time (BFS-like many-small-launch runs).
    let c_over = (cuda_wall_ns - cuda_kernel_ns).max(0.0);
    let o_over = (opencl_wall_ns - opencl_kernel_ns).max(0.0);
    let over_share = (c_over / cuda_wall_ns.max(1.0)).max(o_over / opencl_wall_ns.max(1.0));
    if over_share >= 0.10 {
        consider("launch_overhead_ns", c_over, o_over);
    }
    // Under ~5 % divergence on every axis the runs are equivalent.
    if best.1 < 0.05 {
        return "comparable".to_string();
    }
    best.0.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(pairs: &[(&'static str, f64)]) -> CounterSet {
        let mut c = CounterSet::new();
        for &(n, v) in pairs {
            c.push(n, v);
        }
        c
    }

    #[test]
    fn report_round_trips() {
        let report = BenchReport {
            scale: "quick".into(),
            fault_seed: Some(7),
            runs: vec![BenchRun {
                bench: "BFS".into(),
                device: "GTX280".into(),
                api: "OpenCL".into(),
                value: 0.125,
                unit: "sec".into(),
                verified: true,
                wall_ns: 2e9,
                kernel_ns: 1.5e9,
                launches: 120,
                sim_cycles: 3.5e8,
                counters: set(&[("gmem_transactions", 1024.0), ("l1_hit_rate", 0.75)]),
                status: RUN_OK.to_string(),
                fault: None,
                attempts: 1,
                input_hash: "00f1e2d3c4b5a697".into(),
                cached: true,
            }],
            prs: vec![PrEntry {
                bench: "BFS".into(),
                device: "GTX280".into(),
                pr: 0.63,
                dominant_counter: "launch_overhead_ns".into(),
            }],
            sim_speed: vec![SimSpeed {
                bench: "BFS".into(),
                interp_ns: 9_000_000,
                decoded_ns: 6_000_000,
                fused_ns: 3_000_000,
            }],
        };
        let parsed = BenchReport::from_text(&report.to_text()).unwrap();
        assert_eq!(parsed.scale, "quick");
        assert_eq!(parsed.fault_seed, Some(7));
        assert!(!parsed.is_partial());
        let run = parsed.run("BFS", "GTX280", "OpenCL").unwrap();
        assert!(run.is_ok());
        assert_eq!(run.attempts, 1);
        assert_eq!(run.launches, 120);
        assert_eq!(run.counters.get("gmem_transactions"), Some(1024.0));
        assert_eq!(run.counters.get("l1_hit_rate"), Some(0.75));
        let pr = parsed.pr("BFS", "GTX280").unwrap();
        assert_eq!(pr.pr, 0.63);
        assert_eq!(pr.dominant_counter, "launch_overhead_ns");
        assert_eq!(run.input_hash, "00f1e2d3c4b5a697");
        assert!(run.cached);
        assert_eq!(parsed.cache_hits(), 1);
        assert_eq!(parsed.sim_speed.len(), 1);
        assert_eq!(parsed.sim_speed[0].bench, "BFS");
        assert_eq!(parsed.sim_speed[0].interp_ns, 9_000_000);
        assert_eq!(parsed.sim_speed[0].fused_ns, 3_000_000);
        assert!((parsed.sim_speed[0].fused_speedup() - 3.0).abs() < 1e-9);
        assert!((parsed.sim_speed[0].decoded_speedup() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn pre_v4_reports_parse_with_empty_sim_speed() {
        let text = r#"{"schema":3,"scale":"quick","fault_seed":null,
            "runs":[],"prs":[]}"#;
        let parsed = BenchReport::from_text(text).unwrap();
        assert!(parsed.sim_speed.is_empty());
    }

    #[test]
    fn wrong_schema_is_rejected() {
        assert!(BenchReport::from_text("{\"schema\":99,\"runs\":[],\"prs\":[]}").is_err());
        assert!(BenchReport::from_text("not json").is_err());
    }

    #[test]
    fn pre_v3_reports_parse_with_empty_cache_fields() {
        let text = r#"{"schema":2,"scale":"quick","fault_seed":null,
            "runs":[{"bench":"MxM","device":"GTX480","api":"CUDA",
                     "value":1.5,"unit":"GFlops/s","verified":true,
                     "wall_ns":1e6,"kernel_ns":9e5,"launches":1,
                     "sim_cycles":1e5,"status":"ok","fault":null,
                     "attempts":1,"counters":{}}],
            "prs":[]}"#;
        let parsed = BenchReport::from_text(text).unwrap();
        let run = parsed.run("MxM", "GTX480", "CUDA").unwrap();
        assert_eq!(run.input_hash, "");
        assert!(!run.cached);
        assert_eq!(parsed.cache_hits(), 0);
    }

    #[test]
    fn launch_overhead_dominates_when_overheads_diverge() {
        let c = set(&[("issue_cycles", 1000.0)]);
        let o = set(&[("issue_cycles", 1000.0)]);
        let name = dominant_counter(&c, 1.1e6, 1.0e6, &o, 2.0e6, 1.0e6);
        assert_eq!(name, "launch_overhead_ns");
    }

    #[test]
    fn negligible_overhead_never_wins_attribution() {
        // Overhead still differs 6x, but it is under 1 % of wall time on
        // both sides; the instruction-count gap is the real story.
        let c = set(&[("issue_cycles", 1000.0)]);
        let o = set(&[("issue_cycles", 1400.0)]);
        let name = dominant_counter(&c, 1.001e9, 1.0e9, &o, 1.406e9, 1.4e9);
        assert_eq!(name, "issue_cycles");
    }

    #[test]
    fn equivalent_runs_are_comparable() {
        let c = set(&[("issue_cycles", 1000.0), ("gmem_transactions", 50.0)]);
        let o = set(&[("issue_cycles", 1010.0), ("gmem_transactions", 50.0)]);
        let name = dominant_counter(&c, 1.0e6, 0.9e6, &o, 1.01e6, 0.91e6);
        assert_eq!(name, "comparable");
    }
}
