//! Chrome-trace (Trace Event Format) export of a traced session.
//!
//! The produced JSON loads directly in `ui.perfetto.dev` or
//! `chrome://tracing`:
//!
//! - one *process* per session, named after the simulated device;
//! - one *thread track per compute unit* (`CU 0` … `CU n-1`): a kernel
//!   launch paints an `X` (complete) slice on every CU the grid occupied,
//!   in the round-robin block distribution the timing model assumes;
//! - a `PCIe` track with one slice per host↔device transfer;
//! - an `API` track with the submit-overhead slice of every launch (the
//!   paper's Section IV-B-4 launch-time difference, visible as the gap
//!   between submission and kernel start);
//! - counter (`C`) tracks sampled at every kernel boundary: DRAM
//!   bandwidth, L1/L2 hit rates, and achieved occupancy.
//!
//! Work enqueued on an **explicit stream** (id > 0) gets its *own* track
//! (`Stream 1`, `Stream 2`, …) carrying that stream's transfers and
//! launches, so cross-stream overlap is visible as side-by-side slices —
//! while each individual track stays physically serial (slices within one
//! track never overlap). Default-stream work keeps the per-engine tracks
//! above, and only default-stream launches drive the counter tracks.
//!
//! Timestamps are the session's virtual nanoseconds divided by 1000
//! (the format counts microseconds); fractional values are allowed by
//! the format and preserved by Perfetto.

use crate::json::Json;
use gpucmp_runtime::{SessionEvent, TransferDir};
use gpucmp_sim::DeviceSpec;

/// Process id [`chrome_trace`] uses for its single session.
const PID: i64 = 1;
/// Thread-id base for CU tracks (tid = CU_TID0 + cu index).
const CU_TID0: i64 = 10;
/// Thread id of the PCIe transfer track.
const PCIE_TID: i64 = 2;
/// Thread id of the API/launch-overhead track.
const API_TID: i64 = 3;
/// Thread-id base for explicit-stream tracks (tid = STREAM_TID0 + stream
/// id; safely above any realistic CU count).
const STREAM_TID0: i64 = 100;

fn ev_meta(pid: i64, name: &str, tid: i64, value: &str) -> Json {
    Json::obj([
        ("name", name.into()),
        ("ph", "M".into()),
        ("pid", Json::Int(pid)),
        ("tid", Json::Int(tid)),
        ("args", Json::obj([("name", value.into())])),
    ])
}

fn ev_slice(pid: i64, name: &str, tid: i64, ts_ns: f64, dur_ns: f64, args: Json) -> Json {
    Json::obj([
        ("name", name.into()),
        ("cat", "gpucmp".into()),
        ("ph", "X".into()),
        ("ts", Json::Num(ts_ns / 1000.0)),
        ("dur", Json::Num((dur_ns / 1000.0).max(0.001))),
        ("pid", Json::Int(pid)),
        ("tid", Json::Int(tid)),
        ("args", args),
    ])
}

fn ev_counter(pid: i64, name: &str, ts_ns: f64, series: &str, value: f64) -> Json {
    Json::obj([
        ("name", name.into()),
        ("ph", "C".into()),
        ("ts", Json::Num(ts_ns / 1000.0)),
        ("pid", Json::Int(pid)),
        (
            "args",
            Json::Obj(vec![(series.to_string(), Json::Num(value))]),
        ),
    ])
}

/// Serialise a traced session to a chrome-trace JSON document.
///
/// `events` is [`gpucmp_runtime::Session::trace_events`]; `device` names
/// the process and bounds the per-CU tracks.
pub fn chrome_trace(device: &DeviceSpec, events: &[SessionEvent]) -> Json {
    let mut out: Vec<Json> = Vec::new();
    emit_session(&mut out, PID, device.name, device, events);
    finish(device, out)
}

/// Serialise *many* traced sessions into one chrome-trace document: one
/// chrome **process per stream**, each with the full per-CU / PCIe / API
/// track layout of [`chrome_trace`].
///
/// This is the multi-tenant server's export: each harvested
/// per-(tenant, session) stream becomes its own named process (e.g.
/// `"acme / session 3"`), so Perfetto shows the tenants side by side on
/// a shared virtual-time axis — including the `FAULT` instant on the
/// poisoned tenant's track while its neighbours' tracks keep running.
pub fn chrome_trace_multi(device: &DeviceSpec, streams: &[(String, Vec<SessionEvent>)]) -> Json {
    let mut out: Vec<Json> = Vec::new();
    for (i, (name, events)) in streams.iter().enumerate() {
        emit_session(&mut out, PID + i as i64, name, device, events);
    }
    finish(device, out)
}

/// Emit one session's metadata and events as chrome process `pid`.
fn emit_session(
    out: &mut Vec<Json>,
    pid: i64,
    process_name: &str,
    device: &DeviceSpec,
    events: &[SessionEvent],
) {
    out.push(ev_meta(pid, "process_name", 0, process_name));
    out.push(ev_meta(pid, "thread_name", PCIE_TID, "PCIe"));
    out.push(ev_meta(pid, "thread_name", API_TID, "API"));
    // Name only the CU tracks the trace actually uses (default-stream
    // work), plus one track per explicit stream that appears.
    let max_cu = events
        .iter()
        .filter_map(|e| match e {
            SessionEvent::Launch {
                grid, stream: 0, ..
            } => Some((grid.count().min(device.compute_units as u64)).max(1) as u32),
            SessionEvent::Fault { cu, stream: 0, .. } => Some(cu + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    for cu in 0..max_cu {
        out.push(ev_meta(
            pid,
            "thread_name",
            CU_TID0 + cu as i64,
            &format!("CU {cu}"),
        ));
    }
    let mut stream_ids: Vec<u32> = events
        .iter()
        .map(|e| match e {
            SessionEvent::Launch { stream, .. }
            | SessionEvent::Transfer { stream, .. }
            | SessionEvent::Fault { stream, .. } => *stream,
        })
        .filter(|&s| s > 0)
        .collect();
    stream_ids.sort_unstable();
    stream_ids.dedup();
    for s in &stream_ids {
        out.push(ev_meta(
            pid,
            "thread_name",
            STREAM_TID0 + *s as i64,
            &format!("Stream {s}"),
        ));
    }

    for e in events {
        match e {
            SessionEvent::Transfer {
                dir,
                start_ns,
                dur_ns,
                bytes,
                stream,
            } => {
                let name = match dir {
                    TransferDir::H2D => "memcpy H2D",
                    TransferDir::D2H => "memcpy D2H",
                };
                let tid = if *stream == 0 {
                    PCIE_TID
                } else {
                    STREAM_TID0 + *stream as i64
                };
                let gbs = *bytes as f64 / dur_ns.max(1.0);
                out.push(ev_slice(
                    pid,
                    name,
                    tid,
                    *start_ns,
                    *dur_ns,
                    Json::obj([("bytes", (*bytes).into()), ("GB/s", Json::Num(gbs))]),
                ));
            }
            SessionEvent::Launch {
                kernel,
                start_ns,
                overhead_ns,
                kernel_ns,
                grid,
                block,
                stats,
                timing,
                stream,
            } => {
                let args = Json::obj([
                    (
                        "grid",
                        Json::Str(format!("{}x{}x{}", grid.x, grid.y, grid.z)),
                    ),
                    (
                        "block",
                        Json::Str(format!("{}x{}x{}", block.x, block.y, block.z)),
                    ),
                    ("blocks", grid.count().into()),
                    ("dominant", timing.dominant().into()),
                    ("occupancy", Json::Num(timing.occupancy)),
                    ("dram_bytes", stats.dram_bytes().into()),
                    ("l2_hit_rate", Json::Num(stats.l2_hit_rate())),
                ]);
                if *stream > 0 {
                    // Explicit-stream launch: one slice on the stream's own
                    // track spanning submit overhead + kernel, so overlap
                    // with other streams shows without ever stacking slices
                    // within one track.
                    let mut a = args.clone();
                    if let Json::Obj(fields) = &mut a {
                        fields.push(("overhead_ns".to_string(), Json::Num(*overhead_ns)));
                    }
                    out.push(ev_slice(
                        pid,
                        kernel,
                        STREAM_TID0 + *stream as i64,
                        *start_ns,
                        overhead_ns + kernel_ns,
                        a,
                    ));
                    continue;
                }
                out.push(ev_slice(
                    pid,
                    &format!("launch {kernel}"),
                    API_TID,
                    *start_ns,
                    *overhead_ns,
                    Json::obj([("overhead_ns", Json::Num(*overhead_ns))]),
                ));
                let kstart = start_ns + overhead_ns;
                // Blocks spread round-robin over the CUs; every occupied CU
                // is busy for the whole modelled kernel duration.
                let cus = (grid.count().min(device.compute_units as u64)).max(1) as u32;
                for cu in 0..cus {
                    out.push(ev_slice(
                        pid,
                        kernel,
                        CU_TID0 + cu as i64,
                        kstart,
                        *kernel_ns,
                        args.clone(),
                    ));
                }
                // Counter tracks: step to the launch's level at kernel
                // start, back to zero at kernel end.
                let gbs = stats.dram_bytes() as f64 / kernel_ns.max(1.0);
                for (track, series, v) in [
                    ("DRAM bandwidth", "GB/s", gbs),
                    ("L1 hit rate", "rate", stats.l1_hit_rate()),
                    ("L2 hit rate", "rate", stats.l2_hit_rate()),
                    ("Occupancy", "warp slots", timing.occupancy),
                ] {
                    out.push(ev_counter(pid, track, kstart, series, v));
                    out.push(ev_counter(pid, track, kstart + kernel_ns, series, 0.0));
                }
            }
            SessionEvent::Fault {
                kernel,
                t_ns,
                desc,
                pc,
                block,
                thread,
                cu,
                stream,
            } => {
                // Instant event on the CU track that ran the faulting
                // block (default stream) or on the stream's own track, so
                // the fault lands on the offending lane of the timeline.
                let mut args = vec![("fault".to_string(), Json::Str(desc.clone()))];
                if let Some(pc) = pc {
                    args.push(("pc".to_string(), (*pc as u64).into()));
                }
                if let Some(b) = block {
                    args.push((
                        "block".to_string(),
                        Json::Str(format!("{},{},{}", b[0], b[1], b[2])),
                    ));
                }
                if let Some(t) = thread {
                    args.push((
                        "thread".to_string(),
                        Json::Str(format!("{},{},{}", t[0], t[1], t[2])),
                    ));
                }
                let tid = if *stream == 0 {
                    CU_TID0 + *cu as i64
                } else {
                    STREAM_TID0 + *stream as i64
                };
                out.push(Json::obj([
                    ("name", Json::Str(format!("FAULT {kernel}"))),
                    ("cat", "gpucmp".into()),
                    ("ph", "i".into()),
                    ("s", "t".into()),
                    ("ts", Json::Num(t_ns / 1000.0)),
                    ("pid", Json::Int(pid)),
                    ("tid", Json::Int(tid)),
                    ("args", Json::Obj(args)),
                ]));
            }
        }
    }
}

/// Wrap the collected events in the document envelope.
fn finish(device: &DeviceSpec, out: Vec<Json>) -> Json {
    Json::obj([
        ("displayTimeUnit", "ns".into()),
        (
            "otherData",
            Json::obj([
                ("device", device.name.into()),
                ("producer", "gpucmp-trace".into()),
            ]),
        ),
        ("traceEvents", Json::Arr(out)),
    ])
}
