//! # gpucmp-trace — observability exports for the simulator
//!
//! Two serialisation targets for a profiled run, both built on a small
//! dependency-free JSON module ([`json`]):
//!
//! - [`chrome::chrome_trace`] turns a traced [`gpucmp_runtime::Session`]
//!   (see `Gpu::set_tracing`) into a Chrome Trace Event Format document
//!   that opens directly in `ui.perfetto.dev` — one track per compute
//!   unit, plus PCIe, API-overhead and counter tracks.
//! - [`report::BenchReport`] is the flat `BENCH_<timestamp>.json` file
//!   `examples/reproduce_paper` emits: one row per (benchmark, device,
//!   API) with the full hardware-counter set, plus per-pair PRs with a
//!   machine-derived *dominant counter* attribution. The CI gate parses
//!   this file and fails on paper-shape regressions.

pub mod chrome;
pub mod json;
pub mod report;

pub use chrome::{chrome_trace, chrome_trace_multi};
pub use json::{parse, Json, JsonError};
pub use report::{
    dominant_counter, BenchReport, BenchRun, PrEntry, SimSpeed, MIN_SCHEMA_VERSION,
    RUN_FAULT_SKIPPED, RUN_OK, SCHEMA_VERSION,
};
