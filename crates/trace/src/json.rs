//! A minimal JSON value, writer, and parser.
//!
//! The build environment vendors `serde` as a marker-trait shim with no
//! runtime serialisation, so the observability exports carry their own
//! JSON layer. It is deliberately small: a [`Json`] tree, a writer that
//! always emits valid RFC 8259 text (NaN/infinite numbers become `null`),
//! and a recursive-descent parser used by the round-trip tests and the CI
//! gate binary. Object member order is preserved, which keeps every
//! serialisation byte-deterministic.

use std::fmt;

/// A JSON value.
///
/// Integers keep a dedicated variant so `u64` counters survive a
/// round-trip exactly (an `f64` mantissa cannot hold every `u64`).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fits `i64`.
    Int(i64),
    /// Any other finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member of an object by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(v) => Some(v as f64),
            Json::Num(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialise to compact JSON text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        // u64 counters in this codebase are far below 2^63.
        Json::Int(v as i64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(v as i64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn write_value(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(n) => out.push_str(&n.to_string()),
        Json::Num(n) => {
            if n.is_finite() {
                // Rust's shortest-round-trip formatting is valid JSON
                // except for the missing fraction on integral values,
                // which JSON happens to allow ("1" is a number).
                out.push_str(&n.to_string());
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Json::Obj(members) => {
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error: message plus byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Int(-42),
            Json::Int(i64::MAX),
            Json::Num(1.5),
            Json::Num(1e300),
            Json::Str("he\"llo\n\\ world".into()),
        ] {
            assert_eq!(parse(&v.to_text()).unwrap(), v);
        }
    }

    #[test]
    fn round_trips_nested() {
        let v = Json::obj([
            (
                "a",
                Json::Arr(vec![Json::Int(1), Json::Num(2.5), Json::Null]),
            ),
            ("b", Json::obj([("nested", Json::Bool(false))])),
            ("c", Json::Str(String::new())),
        ]);
        let text = v.to_text();
        assert_eq!(parse(&text).unwrap(), v);
        // member order survives
        assert!(text.find("\"a\"").unwrap() < text.find("\"b\"").unwrap());
    }

    #[test]
    fn non_finite_serialises_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_text(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_text(), "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("01x").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = parse(" { \"k\" : [ 1 , \"\\u00e9\\t✓\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap()[1].as_str().unwrap(),
            "é\t✓"
        );
    }
}
