//! The search harness: tunables, strategies, trial logs.

use gpucmp_runtime::{Gpu, RtError};
use serde::{Deserialize, Serialize};

/// One discrete tunable parameter.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TunableParam {
    /// Parameter name (for reports).
    pub name: &'static str,
    /// Allowed values, in ascending preference-free order.
    pub choices: Vec<i64>,
}

/// A kernel family with a discrete configuration space.
pub trait Tunable {
    /// Family name.
    fn name(&self) -> &'static str;
    /// The parameter space, in configuration-vector order.
    fn params(&self) -> Vec<TunableParam>;
    /// Run one configuration; returns the achieved performance
    /// (higher = better). A configuration may be invalid on a device
    /// (e.g. a work-group size beyond its maximum): return `Ok(None)`.
    fn run(&self, gpu: &mut dyn Gpu, config: &[i64]) -> Result<Option<f64>, RtError>;
}

/// One evaluated configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Trial {
    /// Configuration vector (one value per [`TunableParam`]).
    pub config: Vec<i64>,
    /// Achieved performance, `None` if the configuration was invalid.
    pub value: Option<f64>,
}

/// Result of a tuning run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TuneResult {
    /// Best configuration found.
    pub best_config: Vec<i64>,
    /// Its performance.
    pub best_value: f64,
    /// Every evaluated configuration, in evaluation order.
    pub trials: Vec<Trial>,
}

/// Search strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Evaluate the full Cartesian product.
    Exhaustive,
    /// Coordinate descent from the first valid configuration: sweep one
    /// parameter at a time, keep the best, repeat until a full sweep makes
    /// no progress. Much cheaper on large spaces; may find local optima.
    Greedy,
}

/// The auto-tuner.
#[derive(Clone, Copy, Debug)]
pub struct Tuner {
    /// Strategy to use.
    pub strategy: SearchStrategy,
    /// Maximum trials (safety valve).
    pub max_trials: usize,
}

impl Tuner {
    /// Exhaustive search.
    pub fn exhaustive() -> Tuner {
        Tuner {
            strategy: SearchStrategy::Exhaustive,
            max_trials: 4096,
        }
    }

    /// Greedy coordinate descent.
    pub fn greedy() -> Tuner {
        Tuner {
            strategy: SearchStrategy::Greedy,
            max_trials: 4096,
        }
    }

    /// Tune `t` on the given runtime. Returns an error only if *no*
    /// configuration ran (device errors on specific configs count as
    /// invalid configurations).
    pub fn tune(&self, t: &dyn Tunable, gpu: &mut dyn Gpu) -> Result<TuneResult, RtError> {
        let params = t.params();
        assert!(!params.is_empty(), "nothing to tune");
        let mut trials = Vec::new();
        let evaluate = |cfg: &[i64], gpu: &mut dyn Gpu, trials: &mut Vec<Trial>| -> Option<f64> {
            // skip duplicates (greedy revisits pivots)
            if let Some(t) = trials.iter().find(|t| t.config == cfg) {
                return t.value;
            }
            // a run error means the device rejected this configuration
            let value = t.run(gpu, cfg).unwrap_or_default();
            trials.push(Trial {
                config: cfg.to_vec(),
                value,
            });
            value
        };

        match self.strategy {
            SearchStrategy::Exhaustive => {
                let mut idx = vec![0usize; params.len()];
                loop {
                    if trials.len() >= self.max_trials {
                        break;
                    }
                    let cfg: Vec<i64> = idx
                        .iter()
                        .zip(&params)
                        .map(|(&i, p)| p.choices[i])
                        .collect();
                    evaluate(&cfg, gpu, &mut trials);
                    // odometer increment
                    let mut k = 0;
                    loop {
                        if k == params.len() {
                            break;
                        }
                        idx[k] += 1;
                        if idx[k] < params[k].choices.len() {
                            break;
                        }
                        idx[k] = 0;
                        k += 1;
                    }
                    if k == params.len() {
                        break;
                    }
                }
            }
            SearchStrategy::Greedy => {
                // start from the first configuration of every parameter
                let mut current: Vec<i64> = params.iter().map(|p| p.choices[0]).collect();
                let mut best = evaluate(&current, gpu, &mut trials);
                let mut improved = true;
                while improved && trials.len() < self.max_trials {
                    improved = false;
                    for (pi, p) in params.iter().enumerate() {
                        for &choice in &p.choices {
                            if choice == current[pi] {
                                continue;
                            }
                            let mut cfg = current.clone();
                            cfg[pi] = choice;
                            let v = evaluate(&cfg, gpu, &mut trials);
                            if better(v, best) {
                                best = v;
                                current = cfg;
                                improved = true;
                            }
                        }
                    }
                }
            }
        }

        let best = trials
            .iter()
            .filter_map(|t| t.value.map(|v| (t.config.clone(), v)))
            .max_by(|a, b| a.1.total_cmp(&b.1));
        match best {
            Some((best_config, best_value)) => Ok(TuneResult {
                best_config,
                best_value,
                trials,
            }),
            None => Err(RtError::Compile(format!(
                "no valid configuration for {} on {}",
                t.name(),
                gpu.device().name
            ))),
        }
    }
}

fn better(candidate: Option<f64>, incumbent: Option<f64>) -> bool {
    match (candidate, incumbent) {
        (Some(c), Some(i)) => c > i,
        (Some(_), None) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_runtime::OpenCl;
    use gpucmp_sim::DeviceSpec;

    /// A synthetic tunable with a known optimum and no device work.
    struct Paraboloid;

    impl Tunable for Paraboloid {
        fn name(&self) -> &'static str {
            "paraboloid"
        }
        fn params(&self) -> Vec<TunableParam> {
            vec![
                TunableParam {
                    name: "x",
                    choices: vec![-2, -1, 0, 1, 2],
                },
                TunableParam {
                    name: "y",
                    choices: vec![-2, -1, 0, 1, 2],
                },
            ]
        }
        fn run(&self, _gpu: &mut dyn Gpu, cfg: &[i64]) -> Result<Option<f64>, RtError> {
            // maximum at (1, -1); the (2,2) corner is invalid
            if cfg == [2, 2] {
                return Ok(None);
            }
            let (x, y) = (cfg[0] as f64, cfg[1] as f64);
            Ok(Some(100.0 - (x - 1.0).powi(2) - (y + 1.0).powi(2)))
        }
    }

    #[test]
    fn exhaustive_finds_the_optimum() {
        let mut gpu = OpenCl::create_any(DeviceSpec::gtx480());
        let r = Tuner::exhaustive().tune(&Paraboloid, &mut gpu).unwrap();
        assert_eq!(r.best_config, vec![1, -1]);
        assert_eq!(r.best_value, 100.0);
        assert_eq!(r.trials.len(), 25);
        assert_eq!(r.trials.iter().filter(|t| t.value.is_none()).count(), 1);
    }

    #[test]
    fn greedy_finds_the_optimum_on_separable_objectives() {
        let mut gpu = OpenCl::create_any(DeviceSpec::gtx480());
        let r = Tuner::greedy().tune(&Paraboloid, &mut gpu).unwrap();
        assert_eq!(r.best_config, vec![1, -1]);
        assert!(
            r.trials.len() < 25,
            "greedy must search less: {}",
            r.trials.len()
        );
    }

    #[test]
    fn all_invalid_is_an_error() {
        struct Hopeless;
        impl Tunable for Hopeless {
            fn name(&self) -> &'static str {
                "hopeless"
            }
            fn params(&self) -> Vec<TunableParam> {
                vec![TunableParam {
                    name: "x",
                    choices: vec![0, 1],
                }]
            }
            fn run(&self, _g: &mut dyn Gpu, _c: &[i64]) -> Result<Option<f64>, RtError> {
                Ok(None)
            }
        }
        let mut gpu = OpenCl::create_any(DeviceSpec::gtx480());
        assert!(Tuner::exhaustive().tune(&Hopeless, &mut gpu).is_err());
    }
}
