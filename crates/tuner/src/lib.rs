//! # gpucmp-tuner — the paper's proposed auto-tuner
//!
//! The paper closes with: *"we would like to develop an auto-tuner to adapt
//! general-purpose OpenCL programs to all available specific platforms to
//! fully exploit the hardware"*, and Section V observes that the best code
//! shape is platform-specific (local-memory staging hurts on CPU devices,
//! the warp-per-row SPMV collapses there, work-group sizes matter). This
//! crate implements that auto-tuner against the simulator:
//!
//! - a [`Tunable`] is a kernel family with a discrete parameter space
//!   (tile size, staging strategy, work-group size, ...);
//! - a [`Tuner`] searches the space on a concrete device — exhaustively or
//!   with a greedy coordinate descent — and returns the best configuration
//!   with the full trial log;
//! - [`transpose::TunableTranspose`] reproduces the paper's Section V
//!   findings mechanically: the tuned configuration uses padded
//!   shared-memory staging on GPUs and the direct copy on the Intel920.
//!
//! Everything is deterministic: tuning the same kernel on the same device
//! twice yields the identical trial log.

pub mod search;
pub mod transpose;

pub use search::{SearchStrategy, Trial, Tunable, TunableParam, TuneResult, Tuner};
pub use transpose::TunableTranspose;

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_runtime::OpenCl;
    use gpucmp_sim::DeviceSpec;

    #[test]
    fn tuned_transpose_prefers_shared_memory_on_gpus() {
        let t = TunableTranspose::new(256);
        let mut gpu = OpenCl::create_any(DeviceSpec::gtx280());
        let r = Tuner::exhaustive().tune(&t, &mut gpu).unwrap();
        let cfg = t.describe(&r.best_config);
        assert_eq!(
            cfg.get("staging").map(String::as_str),
            Some("shared+padded"),
            "GTX280 best config: {cfg:?}"
        );
    }

    #[test]
    fn tuned_transpose_prefers_direct_copy_on_cpu() {
        // the paper's Section V observation, found automatically
        let t = TunableTranspose::new(256);
        let mut cpu = OpenCl::create_any(DeviceSpec::intel920());
        let r = Tuner::exhaustive().tune(&t, &mut cpu).unwrap();
        let cfg = t.describe(&r.best_config);
        assert_eq!(
            cfg.get("staging").map(String::as_str),
            Some("direct"),
            "Intel920 best config: {cfg:?}"
        );
    }

    #[test]
    fn greedy_matches_or_approaches_exhaustive() {
        let t = TunableTranspose::new(256);
        let mut gpu = OpenCl::create_any(DeviceSpec::gtx480());
        let ex = Tuner::exhaustive().tune(&t, &mut gpu).unwrap();
        let mut gpu2 = OpenCl::create_any(DeviceSpec::gtx480());
        let gr = Tuner::greedy().tune(&t, &mut gpu2).unwrap();
        assert!(gr.trials.len() <= ex.trials.len());
        assert!(
            gr.best_value >= 0.8 * ex.best_value,
            "greedy {} vs exhaustive {}",
            gr.best_value,
            ex.best_value
        );
    }

    #[test]
    fn tuning_is_deterministic() {
        let t = TunableTranspose::new(128);
        let run = || {
            let mut gpu = OpenCl::create_any(DeviceSpec::hd5870());
            Tuner::exhaustive().tune(&t, &mut gpu).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.best_config, b.best_config);
        assert_eq!(a.best_value.to_bits(), b.best_value.to_bits());
        assert_eq!(a.trials.len(), b.trials.len());
    }
}
