//! A tunable matrix transpose: the worked example of the paper's
//! auto-tuner proposal.
//!
//! Parameter space:
//! - `tile`: 8, 16 or 32 (work-group is `tile x tile`);
//! - `staging`: direct copy (0), shared memory (1), shared + padding (2).
//!
//! The optimum is platform-specific in exactly the way the paper's
//! Section V describes: GPUs want the padded shared-memory tile (coalesced
//! both ways, no bank conflicts), while CPU OpenCL devices are fastest
//! with the direct copy because their "local memory" is an emulated copy
//! through the cache hierarchy.

use crate::search::{Tunable, TunableParam};
use gpucmp_compiler::{ld_global, Builtin, DslKernel, Expr, KernelDef};
use gpucmp_ptx::Ty;
use gpucmp_runtime::{Gpu, GpuExt, RtError};
use gpucmp_sim::LaunchConfig;
use std::collections::HashMap;

/// Staging strategies, in configuration-value order.
const STAGINGS: [&str; 3] = ["direct", "shared", "shared+padded"];

/// The tunable transpose of an `n x n` f32 matrix.
#[derive(Clone, Debug)]
pub struct TunableTranspose {
    /// Matrix edge (must be a multiple of every tile choice, i.e. of 32).
    pub n: u32,
}

impl TunableTranspose {
    /// Create for an `n x n` matrix (n a multiple of 32).
    pub fn new(n: u32) -> Self {
        assert_eq!(n % 32, 0, "n must be a multiple of the largest tile");
        TunableTranspose { n }
    }

    /// Human-readable description of a configuration vector.
    pub fn describe(&self, config: &[i64]) -> HashMap<&'static str, String> {
        let mut m = HashMap::new();
        m.insert("tile", config[0].to_string());
        m.insert("staging", STAGINGS[config[1] as usize].to_string());
        m
    }

    fn kernel(&self, tile: i64, staging: i64) -> KernelDef {
        let tile = tile as i32;
        let stride = if staging == 2 { tile + 1 } else { tile };
        let mut k = DslKernel::new("transpose_tuned");
        let input = k.param_ptr("input");
        let output = k.param_ptr("output");
        let n = k.param("n", Ty::S32);
        let tx = k.let_(Ty::S32, Expr::from(Builtin::TidX));
        let ty_ = k.let_(Ty::S32, Expr::from(Builtin::TidY));
        let x = k.let_(Ty::S32, Expr::from(Builtin::CtaidX) * tile + tx);
        let y = k.let_(Ty::S32, Expr::from(Builtin::CtaidY) * tile + ty_);
        if staging == 0 {
            k.st_global(
                output,
                Expr::from(x) * n.clone() + y,
                Ty::F32,
                ld_global(input.clone(), Expr::from(y) * n.clone() + x, Ty::F32),
            );
        } else {
            let sm = k.shared_array(Ty::F32, (tile * stride) as u32);
            k.st_shared(
                sm,
                Expr::from(ty_) * stride + tx,
                ld_global(input.clone(), Expr::from(y) * n.clone() + x, Ty::F32),
            );
            k.barrier();
            let xo = k.let_(Ty::S32, Expr::from(Builtin::CtaidY) * tile + tx);
            let yo = k.let_(Ty::S32, Expr::from(Builtin::CtaidX) * tile + ty_);
            k.st_global(
                output,
                Expr::from(yo) * n.clone() + xo,
                Ty::F32,
                sm.ld(Expr::from(tx) * stride + ty_),
            );
        }
        k.finish()
    }
}

impl Tunable for TunableTranspose {
    fn name(&self) -> &'static str {
        "transpose"
    }

    fn params(&self) -> Vec<TunableParam> {
        vec![
            TunableParam {
                name: "tile",
                choices: vec![8, 16, 32],
            },
            TunableParam {
                name: "staging",
                choices: vec![0, 1, 2],
            },
        ]
    }

    fn run(&self, gpu: &mut dyn Gpu, config: &[i64]) -> Result<Option<f64>, RtError> {
        let (tile, staging) = (config[0], config[1]);
        let n = self.n as usize;
        if (tile * tile) as u64 > gpu.device().max_workgroup_size as u64 {
            return Ok(None);
        }
        let def = self.kernel(tile, staging);
        let h = match gpu.build(&def) {
            Ok(h) => h,
            Err(_) => return Ok(None),
        };
        let d_in = gpu.malloc((n * n * 4) as u64)?;
        let d_out = gpu.malloc((n * n * 4) as u64)?;
        let data: Vec<f32> = (0..n * n).map(|i| (i % 251) as f32).collect();
        gpu.h2d_t(d_in, &data)?;
        let grid = self.n / tile as u32;
        let cfg = LaunchConfig::new((grid, grid), (tile as u32, tile as u32))
            .arg_ptr(d_in)
            .arg_ptr(d_out)
            .arg_i32(self.n as i32);
        let out = match gpu.launch(h, &cfg) {
            Ok(o) => o,
            Err(RtError::Cl(_)) => return Ok(None),
            Err(e) => return Err(e),
        };
        // tuned configurations must stay correct
        let got = gpu.d2h_t::<f32>(d_out, n * n)?;
        for yy in (0..n).step_by(97) {
            for xx in (0..n).step_by(89) {
                if got[xx * n + yy] != data[yy * n + xx] {
                    return Ok(None); // wrong results disqualify
                }
            }
        }
        let bytes = 2.0 * (n * n * 4) as f64;
        Ok(Some(bytes / out.report.timing.total_ns)) // GB/s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_runtime::OpenCl;
    use gpucmp_sim::DeviceSpec;

    #[test]
    fn every_configuration_is_functionally_correct_or_rejected() {
        let t = TunableTranspose::new(64);
        let mut gpu = OpenCl::create_any(DeviceSpec::gtx480());
        for tile in [8i64, 16, 32] {
            for staging in [0i64, 1, 2] {
                // run() itself verifies sampled elements and returns None
                // on mismatch; Some(v) therefore implies correctness
                let r = t.run(&mut gpu, &[tile, staging]).unwrap();
                assert!(r.is_some(), "tile={tile} staging={staging} rejected");
            }
        }
    }

    #[test]
    fn oversized_tiles_are_rejected_not_crashed() {
        let t = TunableTranspose::new(64);
        // HD5870 max work-group is 256: a 32x32 tile (1024 threads) must
        // be reported as invalid
        let mut gpu = OpenCl::create_any(DeviceSpec::hd5870());
        assert_eq!(t.run(&mut gpu, &[32, 2]).unwrap(), None);
        assert!(t.run(&mut gpu, &[16, 2]).unwrap().is_some());
    }

    #[test]
    fn padding_beats_unpadded_shared_on_gt200() {
        let t = TunableTranspose::new(256);
        let mut gpu = OpenCl::create_any(DeviceSpec::gtx280());
        let unpadded = t.run(&mut gpu, &[16, 1]).unwrap().unwrap();
        let padded = t.run(&mut gpu, &[16, 2]).unwrap().unwrap();
        assert!(
            padded > unpadded,
            "padded {padded} must beat unpadded {unpadded}"
        );
    }
}
