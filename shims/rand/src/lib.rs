//! Offline stand-in for the parts of `rand` 0.8 this workspace uses:
//! `SmallRng::seed_from_u64`, `Rng::gen`, and `Rng::gen_range` over
//! integer/float ranges (half-open and inclusive).
//!
//! The benchmarks only use random values as *input data* that is fed to
//! both the device kernel and the CPU reference, so the exact stream does
//! not matter for correctness — only determinism per seed does. The core
//! is xoshiro256** seeded via splitmix64 (the same construction the real
//! `SmallRng` uses on 64-bit targets, though the stream differs).

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        T: SampleStandard,
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types producible by `Rng::gen` (the `Standard` distribution).
pub trait SampleStandard {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types samplable from a range (the `SampleUniform` bound).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` if `!inclusive`, else `[lo, hi]`.
    fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "empty range in gen_range"
                );
                let span = (hi as $u).wrapping_sub(lo as $u);
                let span = if inclusive { span.wrapping_add(1) } else { span };
                if span == 0 {
                    // inclusive over the full domain wrapped to 0: any value
                    return rng.next_u64() as $t;
                }
                let v = (rng.next_u64() as $u) % span;
                (lo as $u).wrapping_add(v) as $t
            }
        }
    )*};
}
uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleUniform for f32 {
    fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        let u = f32::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f64 {
    fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// Range forms accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias so `StdRng`-based code would also compile against the shim.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(5u32..=9);
            assert!((5..=9).contains(&w));
            let f = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: usize = r.gen_range(0..10usize);
            assert!(u < 10);
        }
    }

    #[test]
    fn degenerate_inclusive_range() {
        let mut r = SmallRng::seed_from_u64(1);
        assert_eq!(r.gen_range(4..=4), 4);
    }
}
