//! Deterministic RNG + config for the proptest shim.

/// Subset of proptest's `ProptestConfig`: only `cases` matters here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// splitmix64 stream, seeded from the test name so every test has its own
/// reproducible sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, then a fixed tweak so empty names differ
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
