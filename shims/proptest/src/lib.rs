//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! Generation-only: strategies produce random values from a deterministic
//! per-test stream and failures panic with the case's debug representation.
//! There is no shrinking — a failing case prints its inputs instead. The
//! supported surface is exactly what the repo's property tests need:
//! `proptest!`, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `Just`,
//! `any::<T>()`, integer/float range strategies, tuple strategies,
//! `prop::collection::vec`, `prop::array::uniform4`, `.prop_map`,
//! `.prop_recursive`, and `BoxedStrategy`.

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// `prop::collection`, `prop::array` namespaces.
pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }
    pub mod array {
        pub use crate::strategy::uniform4;
    }
}

pub mod collection {
    pub use crate::strategy::vec;
}

pub mod array {
    pub use crate::strategy::uniform4;
}

/// The whole `proptest!` block: optional `#![proptest_config(..)]` header,
/// then ordinary `#[test]` functions whose arguments are drawn from
/// strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let dbg = format!(concat!($("\n  ", stringify!($arg), " = {:?}",)+), $(&$arg),+);
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(msg) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs:{}",
                            case + 1, config.cases, msg, dbg
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assertion that aborts only the current case (here: the whole test,
/// since there is no shrinking to salvage).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)*)
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!("assertion failed: {:?} == {:?}", l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {:?} == {:?}: {}",
                l, r, format!($($fmt)*)
            ));
        }
    }};
}

/// Uniform choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
