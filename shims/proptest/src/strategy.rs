//! Strategy trait and the combinators the workspace's property tests use.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for producing random values. Object-safe: every combinator is
/// `where Self: Sized` so `dyn Strategy<Value = T>` works for boxing.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Depth-bounded recursive strategy. `recurse` receives a boxed
    /// strategy for the previous level; leaves come from `self`.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut level: BoxedStrategy<Self::Value> = self.clone().boxed();
        for _ in 0..depth {
            let deeper = recurse(level).boxed();
            // lean toward recursion at shallow depths, leaves deeper in
            level = Union::weighted(vec![(1, self.clone().boxed()), (2, deeper)]).boxed();
        }
        level
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Clonable type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// `Just(v)`: always produce a clone of `v`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Clone, F: Clone> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: self.f.clone(),
        }
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row");
    }
}

/// Weighted union of strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Self::weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum();
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!()
    }
}

/// `any::<T>()` — the full domain of `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub trait Arbitrary {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

#[derive(Clone, Copy, Debug)]
pub struct AnyOf<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_via {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for AnyOf<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $gen;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyOf<$t>;
            fn arbitrary() -> AnyOf<$t> {
                AnyOf(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_via! {
    u8 => |r| r.next_u64() as u8,
    u16 => |r| r.next_u64() as u16,
    u32 => |r| r.next_u64() as u32,
    u64 => |r| r.next_u64(),
    usize => |r| r.next_u64() as usize,
    i8 => |r| r.next_u64() as i8,
    i16 => |r| r.next_u64() as i16,
    i32 => |r| r.next_u64() as i32,
    i64 => |r| r.next_u64() as i64,
    isize => |r| r.next_u64() as isize,
    bool => |r| r.next_u64() & 1 == 1,
    // all bit patterns, including NaN and infinities, like real proptest
    f32 => |r| f32::from_bits(r.next_u64() as u32),
    f64 => |r| f64::from_bits(r.next_u64()),
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Size argument of `prop::collection::vec`: a fixed length or a range.
pub trait IntoSizeRange {
    fn pick_len(&self, rng: &mut TestRng) -> usize;
}

impl IntoSizeRange for usize {
    fn pick_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl IntoSizeRange for Range<usize> {
    fn pick_len(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty vec size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn pick_len(&self, rng: &mut TestRng) -> usize {
        *self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
    }
}

pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Clone, L: Clone> Clone for VecStrategy<S, L> {
    fn clone(&self) -> Self {
        VecStrategy {
            element: self.element.clone(),
            len: self.len.clone(),
        }
    }
}

impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.pick_len(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, len_or_range)`.
pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

pub struct Uniform4<S>(S);

impl<S: Strategy> Strategy for Uniform4<S> {
    type Value = [S::Value; 4];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; 4] {
        [
            self.0.generate(rng),
            self.0.generate(rng),
            self.0.generate(rng),
            self.0.generate(rng),
        ]
    }
}

/// `prop::array::uniform4(element)`.
pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
    Uniform4(element)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_vecs_in_bounds() {
        let mut rng = TestRng::for_test("ranges_and_vecs_in_bounds");
        for _ in 0..200 {
            let v = (3i32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let xs = vec(0u32..100, 5usize..10).generate(&mut rng);
            assert!(xs.len() >= 5 && xs.len() < 10);
            assert!(xs.iter().all(|x| *x < 100));
            let fixed = vec(any::<u32>(), 16usize).generate(&mut rng);
            assert_eq!(fixed.len(), 16);
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Clone, Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(i32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i32..10)
            .prop_map(Tree::Leaf)
            .boxed()
            .prop_recursive(4, 48, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::for_test("recursive_terminates");
        for _ in 0..100 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 4);
        }
    }
}
