//! Offline stand-in for `serde`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` — no code
//! path serializes at runtime (there is no serde_json or bincode in the
//! tree). The traits are therefore plain markers, blanket-implemented for
//! every type, and the re-exported derives expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Owned variant, part of real serde's public API surface.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}
