//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The companion `serde` shim blanket-implements its `Serialize` and
//! `Deserialize` marker traits for every type, so the derives here only
//! need to exist — emitting an empty token stream keeps every
//! `#[derive(Serialize, Deserialize)]` in the workspace compiling without
//! network access to the real serde.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
