//! Offline stand-in for the slice of `criterion` the bench crate uses:
//! `Criterion::default().sample_size(n)`, `bench_function`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Each benchmark runs `sample_size` iterations and reports min/mean/max
//! wall-clock time — enough to compare runs by hand without the real
//! statistics engine.

use std::time::{Duration, Instant};

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            rounds: self.sample_size,
        };
        f(&mut b);
        let n = b.samples.len().max(1);
        let total: Duration = b.samples.iter().sum();
        let mean = total / n as u32;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let max = b.samples.iter().max().copied().unwrap_or_default();
        println!(
            "bench {name:<40} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({n} samples)"
        );
        self
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    rounds: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.rounds {
            let start = Instant::now();
            let out = f();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

/// Identity helper mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
