//! Offline stand-in for the sliver of `rayon` this workspace uses:
//! `slice.par_iter().map(f).collect::<Vec<_>>()`.
//!
//! Items are split into one contiguous chunk per available core and mapped
//! on scoped threads; results are reassembled in input order, so `collect`
//! is deterministic exactly like rayon's indexed parallel iterators.

pub mod prelude {
    pub use super::IntoParallelRefIterator;
}

pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<O, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> O + Sync,
        O: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    pub fn collect<C, O>(self) -> C
    where
        F: Fn(&'a T) -> O + Sync,
        O: Send,
        C: FromIterator<O>,
    {
        run_map(self.items, &self.f).into_iter().collect()
    }
}

fn run_map<'a, T: Sync, O: Send, F: Fn(&'a T) -> O + Sync>(items: &'a [T], f: &F) -> Vec<O> {
    if items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<Vec<O>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<O>>()))
            .collect();
        out = handles.into_iter().map(|h| h.join().unwrap()).collect();
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let v: Vec<u32> = vec![];
        let r: Vec<u32> = v.par_iter().map(|x| *x).collect();
        assert!(r.is_empty());
        let one = [7u32];
        let r: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(r, vec![8]);
    }
}
