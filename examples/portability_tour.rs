//! Portability tour (the paper's Section V): take one OpenCL benchmark and
//! run it, unchanged, on every device of the paper's testbeds — two NVIDIA
//! GPUs, the ATI HD5870, the Intel920 CPU device and the Cell/BE — showing
//! the `CL_DEVICE_TYPE` handling, the fair-comparison verdict against the
//! CUDA build, and the failure modes.
//!
//! ```text
//! cargo run --release --example portability_tour
//! ```

use gpucmp::core::{fairness, BuildConfig};
use gpucmp_benchmarks::reduce::Reduce;
use gpucmp_benchmarks::{Benchmark, Scale};
use gpucmp_runtime::{Cuda, OpenCl, RtError};
use gpucmp_sim::{DeviceKind, DeviceSpec};

fn main() {
    let bench = Reduce::new(Scale::Paper);
    println!("benchmark: {} ({})\n", bench.name(), bench.metric().unit());

    // CUDA baseline: only exists on NVIDIA hardware.
    let mut cuda = Cuda::new(DeviceSpec::gtx280()).expect("CUDA needs an NVIDIA device");
    let base = bench.run(&mut cuda).expect("baseline run");
    println!(
        "CUDA baseline on GTX280: {:.2} {}\n",
        base.value,
        bench.metric().unit()
    );
    assert!(matches!(
        Cuda::new(DeviceSpec::hd5870()),
        Err(RtError::WrongVendor(_))
    ));

    // OpenCL: same binary source everywhere; only the device-type request
    // changes (the paper's "minor modifications").
    for device in DeviceSpec::all() {
        // The naive SDK idiom requests CL_DEVICE_TYPE_GPU and fails on
        // CPU/accelerator platforms...
        let gpu_only = OpenCl::create(device.clone(), DeviceKind::Gpu);
        // ...the portable idiom (CL_DEVICE_TYPE_ALL) always works.
        let mut ocl = OpenCl::create_any(device.clone());
        let note = if gpu_only.is_err() {
            " (CL_DEVICE_TYPE_GPU failed; used CL_DEVICE_TYPE_ALL)"
        } else {
            ""
        };
        match bench.run(&mut ocl) {
            Ok(out) => {
                let verified = if out.verify.is_pass() { "ok" } else { "FL" };
                println!(
                    "OpenCL on {:<9} {:>10.3} {}  [{verified}]{note}",
                    device.name,
                    out.value,
                    bench.metric().unit()
                );
            }
            Err(e) => println!("OpenCL on {:<9} ABT: {e}{note}", device.name),
        }
    }

    // The eight-step fairness verdict for the cross-vendor comparison.
    let c = BuildConfig::cuda("Reduce", &[], "GTX280", "block=256");
    let o = BuildConfig::opencl("Reduce", &[], "HD5870", "block=256");
    let f = fairness(&c, &o);
    println!("\nfair-comparison verdict (CUDA/GTX280 vs OpenCL/HD5870): {f}");
    println!(
        "-> any PR between those two builds cannot be attributed to the programming model alone."
    );
}
