//! Reproduce every figure and table of the paper's evaluation.
//!
//! ```text
//! cargo run --release --example reproduce_paper            # everything
//! cargo run --release --example reproduce_paper fig3 fig8  # a subset
//! cargo run --release --example reproduce_paper --quick    # small inputs
//! cargo run --release --example reproduce_paper bench      # report only
//! ```
//!
//! The `bench` section (part of the default set) additionally writes two
//! machine-readable artifacts to the working directory:
//!
//! - `BENCH_<timestamp>.json` — one row per (benchmark, device, API) with
//!   the full hardware-counter set, plus per-pair PRs with dominant-counter
//!   attribution. `cargo run -p gpucmp-bench --bin gate <file>` checks its
//!   paper-shape invariants in CI.
//! - `TRACE_<timestamp>.json` — a chrome-trace of a profiled Sobel session
//!   on the GTX480; open it in <https://ui.perfetto.dev>.

use gpucmp::core::{bench_report, experiments as exp};
use gpucmp_benchmarks::{Benchmark, Scale};
use gpucmp_runtime::{Cuda, Gpu};
use gpucmp_sim::DeviceSpec;
use std::time::{SystemTime, UNIX_EPOCH};

/// Run the profiled campaign and write the two JSON artifacts.
fn emit_bench_artifacts(scale: Scale) {
    let stamp = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);

    // `GPUCMP_FAULT_SEED=<n>` turns this into a seeded fault-injection
    // campaign (with `GPUCMP_FAULT_ATTEMPTS=1` the injected faults are
    // unrecoverable and the report comes out partial); unset, it is the
    // ordinary fault-free campaign. `GPUCMP_CACHE_FROM=<BENCH_*.json>`
    // reuses unchanged cells from a previous report, and
    // `GPUCMP_SHARD=i/n` runs one slice of the matrix.
    let opts = bench_report::CampaignOptions::from_env(scale);
    let report = bench_report::bench_report_with(&opts);
    let bench_path = format!("BENCH_{stamp}.json");
    std::fs::write(&bench_path, report.to_text()).expect("write bench report");
    let verified = report.runs.iter().filter(|r| r.verified).count();
    println!(
        "Bench report: {} runs ({} verified, {} cached), {} PR pairs -> {}",
        report.runs.len(),
        verified,
        report.cache_hits(),
        report.prs.len(),
        bench_path
    );
    if opts.cache_from.is_some() {
        println!(
            "Incremental campaign: {} of {} cells served from cache, {} re-executed",
            report.cache_hits(),
            report.runs.len(),
            report.runs.len() - report.cache_hits()
        );
    }
    if let Some((shard, shards)) = opts.shard {
        println!(
            "Shard {shard}/{shards}: {} matrix cells ran here; merge the \
             shard reports before gating",
            report.runs.len()
        );
    }
    if let Some(seed) = opts.fault_seed {
        let skipped: Vec<_> = report.runs.iter().filter(|r| !r.is_ok()).collect();
        println!(
            "Fault injection: seed {seed}, {} attempt(s)/run, {} run(s) fault-skipped",
            opts.max_attempts,
            skipped.len()
        );
        for r in &skipped {
            println!(
                "  skipped {}/{}/{}: {}",
                r.bench,
                r.device,
                r.api,
                r.fault.as_deref().unwrap_or("<unrecorded>")
            );
        }
    }
    println!("{:<8} {:<8} {:>7}  dominant counter", "App", "Device", "PR");
    for p in &report.prs {
        println!(
            "{:<8} {:<8} {:>7.3}  {}",
            p.bench, p.device, p.pr, p.dominant_counter
        );
    }

    // A profiled Sobel session on the GTX480 as a Perfetto-openable trace.
    let device = DeviceSpec::gtx480();
    let mut gpu = Cuda::new(device.clone()).expect("NVIDIA device");
    gpu.set_exec_options(exp::exec_options_from_env());
    gpu.set_tracing(true);
    gpucmp_benchmarks::sobel::Sobel::new(scale)
        .run(&mut gpu)
        .expect("Sobel trace run");
    let trace = gpucmp_trace::chrome_trace(&device, gpu.trace_events());
    let trace_path = format!("TRACE_{stamp}.json");
    std::fs::write(&trace_path, trace.to_text()).expect("write chrome trace");
    println!(
        "\nChrome trace of Sobel on GTX480 ({} events) -> {}  (open in ui.perfetto.dev)",
        gpu.trace_events().len(),
        trace_path
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Paper
    };
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let run = |name: &str| wanted.is_empty() || wanted.contains(&name);

    if run("fig1") {
        println!("{}\n", exp::fig1_peak_bandwidth(scale));
    }
    if run("fig2") {
        println!("{}\n", exp::fig2_peak_flops(scale));
    }
    if run("fig3") {
        println!("{}\n", exp::fig3_performance_ratio(scale));
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(4, 8);
        println!("{}\n", exp::parallel_speedup(scale, threads));
    }
    if run("fig4") || run("fig5") {
        println!("{}\n", exp::fig4_fig5_texture(scale));
    }
    if run("fig6") || run("fig7") {
        println!("{}\n", exp::fig6_fig7_unroll(scale));
    }
    if run("fig8") {
        println!("{}\n", exp::fig8_sobel_constant(scale));
    }
    if run("table5") {
        println!("{}\n", exp::table5_ptx_stats());
    }
    if run("table6") {
        println!("{}\n", exp::table6_portability(scale));
    }
    if run("launch") {
        println!("{}\n", exp::launch_latency());
    }
    if run("bench") {
        emit_bench_artifacts(scale);
    }
}
