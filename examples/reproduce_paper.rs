//! Reproduce every figure and table of the paper's evaluation.
//!
//! ```text
//! cargo run --release --example reproduce_paper            # everything
//! cargo run --release --example reproduce_paper fig3 fig8  # a subset
//! cargo run --release --example reproduce_paper --quick    # small inputs
//! ```

use gpucmp::core::experiments as exp;
use gpucmp_benchmarks::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Paper
    };
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let run = |name: &str| wanted.is_empty() || wanted.contains(&name);

    if run("fig1") {
        println!("{}\n", exp::fig1_peak_bandwidth(scale));
    }
    if run("fig2") {
        println!("{}\n", exp::fig2_peak_flops(scale));
    }
    if run("fig3") {
        println!("{}\n", exp::fig3_performance_ratio(scale));
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(4, 8);
        println!("{}\n", exp::parallel_speedup(scale, threads));
    }
    if run("fig4") || run("fig5") {
        println!("{}\n", exp::fig4_fig5_texture(scale));
    }
    if run("fig6") || run("fig7") {
        println!("{}\n", exp::fig6_fig7_unroll(scale));
    }
    if run("fig8") {
        println!("{}\n", exp::fig8_sobel_constant(scale));
    }
    if run("table5") {
        println!("{}\n", exp::table5_ptx_stats());
    }
    if run("table6") {
        println!("{}\n", exp::table6_portability(scale));
    }
    if run("launch") {
        println!("{}\n", exp::launch_latency());
    }
}
