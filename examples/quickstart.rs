//! Quickstart: write a kernel once, run it through both programming models
//! on a simulated GTX480, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpucmp::compiler::{global_id_x, DslKernel, Expr};
use gpucmp::core::Pr;
use gpucmp::ptx::Ty;
use gpucmp::runtime::{Cuda, Gpu, GpuExt, OpenCl};
use gpucmp::sim::{DeviceSpec, LaunchConfig};

fn main() {
    // 1. Write the kernel once, in the DSL (the paper's "native kernel").
    //    y[i] = a*x[i] + y[i]
    let mut k = DslKernel::new("saxpy");
    let x = k.param_ptr("x");
    let y = k.param_ptr("y");
    let a = k.param("a", Ty::F32);
    let n = k.param("n", Ty::S32);
    let gid = k.let_(Ty::S32, global_id_x());
    k.if_(Expr::from(gid).lt(n), |k| {
        let xi = gpucmp::compiler::ld_global(x.clone(), gid, Ty::F32);
        let yi = gpucmp::compiler::ld_global(y.clone(), gid, Ty::F32);
        k.st_global(y.clone(), gid, Ty::F32, a.clone() * xi + yi);
    });
    let def = k.finish();

    // 2. Run it through each host API on the same (simulated) device.
    let n_elems = 1 << 20;
    let xs: Vec<f32> = (0..n_elems).map(|i| (i % 100) as f32).collect();
    let ys: Vec<f32> = (0..n_elems).map(|i| (i % 7) as f32).collect();

    let mut results = Vec::new();
    for api in ["CUDA", "OpenCL"] {
        let mut gpu: Box<dyn Gpu> = if api == "CUDA" {
            Box::new(Cuda::new(DeviceSpec::gtx480()).expect("NVIDIA device"))
        } else {
            Box::new(OpenCl::create_any(DeviceSpec::gtx480()))
        };
        let dx = gpu.malloc(n_elems as u64 * 4).unwrap();
        let dy = gpu.malloc(n_elems as u64 * 4).unwrap();
        gpu.h2d_t(dx, &xs).unwrap();
        gpu.h2d_t(dy, &ys).unwrap();
        let h = gpu.build(&def).unwrap();
        let cfg = LaunchConfig::new(n_elems as u32 / 256, 256u32)
            .arg_ptr(dx)
            .arg_ptr(dy)
            .arg_f32(2.0)
            .arg_i32(n_elems as i32);
        let out = gpu.launch(h, &cfg).unwrap();
        let t_ms = out.report.timing.total_ns / 1e6;
        let gbs = (3 * n_elems * 4) as f64 / out.report.timing.total_ns;
        println!(
            "{api:<7} kernel time {t_ms:.3} ms  ({gbs:.1} GB/s effective), \
             occupancy {:.0}%, {} DRAM bytes",
            out.report.timing.occupancy * 100.0,
            out.report.stats.dram_bytes()
        );
        // verify
        let got = gpu.d2h_t::<f32>(dy, n_elems).unwrap();
        assert!(got
            .iter()
            .zip(xs.iter().zip(&ys))
            .all(|(&g, (&x, &y))| g == 2.0 * x + y));
        results.push(1e9 / out.report.timing.total_ns); // performance = 1/t
    }

    // 3. The paper's metric: PR = Perf_OpenCL / Perf_CUDA (Eq. 1).
    let pr = Pr::from_performance(results[1], results[0]);
    println!("\nPR = {pr}  ->  {}", pr.verdict());
    println!("(|1 - PR| < 0.1 is the paper's similarity band)");
}
