//! The paper's proposed future work, running: auto-tune a transpose kernel
//! on every platform of the testbeds and watch the best configuration
//! change with the architecture (Section V's observations, found
//! automatically).
//!
//! ```text
//! cargo run --release --example autotune
//! ```

use gpucmp::runtime::OpenCl;
use gpucmp::sim::DeviceSpec;
use gpucmp::tuner::{TunableTranspose, Tuner};

fn main() {
    let t = TunableTranspose::new(512);
    println!("auto-tuning a 512x512 transpose (OpenCL) on every platform\n");
    println!(
        "{:<10} {:>6} {:<15} {:>10} {:>8}",
        "device", "tile", "staging", "GB/s", "trials"
    );
    for device in DeviceSpec::all() {
        let mut gpu = OpenCl::create_any(device.clone());
        match Tuner::exhaustive().tune(&t, &mut gpu) {
            Ok(r) => {
                let cfg = t.describe(&r.best_config);
                println!(
                    "{:<10} {:>6} {:<15} {:>10.2} {:>8}",
                    device.name,
                    cfg["tile"],
                    cfg["staging"],
                    r.best_value,
                    r.trials.len()
                );
            }
            Err(e) => println!("{:<10} tuning failed: {e}", device.name),
        }
    }
    println!(
        "\nNote how the CPU device rejects local-memory staging — the paper's\n\
         Section V TranP observation, discovered by search instead of analysis."
    );
}
