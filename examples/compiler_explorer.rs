//! Compiler explorer: see what the two front-ends make of the same kernel
//! source — the PTX text, the static statistics (the paper's Table V
//! analysis), and the backend resource summary.
//!
//! ```text
//! cargo run --release --example compiler_explorer          # mini demo kernel
//! cargo run --release --example compiler_explorer fft      # the Table V kernel
//! ```

use gpucmp::compiler::{compile, global_id_x, Api, DslKernel, Expr, Unroll};
use gpucmp::ptx::{InstStats, Ty};
use gpucmp_benchmarks::fft::Fft;
use gpucmp_benchmarks::Scale;

fn demo_kernel() -> gpucmp::compiler::KernelDef {
    // A small kernel with foldable structure: an unrolled loop whose body
    // has per-iteration constants a mature compiler can evaluate.
    let mut k = DslKernel::new("demo");
    let out = k.param_ptr("out");
    let gid = k.let_(Ty::S32, global_id_x());
    k.for_(0i64, 4i64, 1, Unroll::Full, |k, i| {
        let weight = (i.clone().cast(Ty::F32) * 0.5f32).cos();
        let idx = Expr::from(gid) * 4i32 + i.clone();
        let flip = gpucmp::compiler::select(i.lt(2i32), 1.0f32, -1.0f32);
        k.st_global(out.clone(), idx, Ty::F32, weight * flip);
    });
    k.finish()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let def = if args.iter().any(|a| a == "fft") {
        Fft::new(Scale::Quick).kernel()
    } else {
        demo_kernel()
    };
    println!("kernel: {}\n", def.name);
    let cuda = compile(&def, Api::Cuda, 124).expect("cuda compile");
    let opencl = compile(&def, Api::OpenCl, 124).expect("opencl compile");

    if !args.iter().any(|a| a == "fft") {
        println!("=== CUDA front-end PTX ===\n{}", cuda.ptx);
        println!("=== OpenCL front-end PTX ===\n{}", opencl.ptx);
    }

    println!("=== static PTX statistics (the paper's Table V view) ===");
    print!(
        "{}",
        InstStats::comparison_table("CUDA", &cuda.ptx_stats, "OpenCL", &opencl.ptx_stats)
    );

    println!("\n=== after the ptxas backend ===");
    for (name, c) in [("CUDA", &cuda), ("OpenCL", &opencl)] {
        println!(
            "{name:<7} exec instructions: {:>5}  regs/thread: {:>3}  local spill: {:>4} B  \
             (propagated/DCE'd {} instructions, fused {} mads, spilled {} regs)",
            c.exec.len_real(),
            c.exec.phys_regs,
            c.exec.local_bytes,
            c.ptxas.removed,
            c.ptxas.fused,
            c.ptxas.spilled,
        );
    }
}
