//! # gpucmp — CUDA vs. OpenCL performance comparison, reproduced in Rust
//!
//! Umbrella crate re-exporting the whole workspace. See the individual crates:
//!
//! - [`ptx`] — the PTX-like virtual ISA,
//! - [`sim`] — the deterministic SIMT architecture simulator,
//! - [`compiler`] — the kernel DSL and the two front-ends,
//! - [`runtime`] — the CUDA-flavoured and OpenCL-flavoured host APIs,
//! - [`benchmarks`] — the 16 benchmarks of the paper,
//! - [`core`] — the comparison methodology (PR metric, fair comparison,
//!   experiment registry),
//! - [`tuner`] — the auto-tuner the paper proposes as future work.

pub use gpucmp_benchmarks as benchmarks;
pub use gpucmp_compiler as compiler;
pub use gpucmp_core as core;
pub use gpucmp_ptx as ptx;
pub use gpucmp_runtime as runtime;
pub use gpucmp_sim as sim;
pub use gpucmp_trace as trace;
pub use gpucmp_tuner as tuner;
