//! Regression tests for the block-parallel simulation engine: simulated
//! results must be bit-identical at every host thread count. The worker
//! count is a host-side speed knob, never an observable.

use gpucmp::benchmarks::common::{Benchmark, Scale, Verify};
use gpucmp::benchmarks::{fft::Fft, rdxs::Rdxs};
use gpucmp::runtime::{Cuda, Gpu, OpenCl};
use gpucmp::sim::{launch_with, DeviceSpec, ExecOptions, GlobalMemory, LaunchConfig};

/// Run `bench` on a fresh CUDA session with `threads` simulation workers.
fn run_cuda_with(
    bench: &dyn Benchmark,
    device: DeviceSpec,
    threads: usize,
) -> gpucmp::benchmarks::RunOutput {
    let mut gpu = Cuda::new(device).expect("NVIDIA device");
    gpu.set_exec_options(ExecOptions::with_threads(threads));
    bench.run(&mut gpu).expect("benchmark run")
}

/// Same through the OpenCL runtime (needed for non-NVIDIA devices).
fn run_opencl_with(
    bench: &dyn Benchmark,
    device: DeviceSpec,
    threads: usize,
) -> gpucmp::benchmarks::RunOutput {
    let mut gpu = OpenCl::create_any(device);
    gpu.set_exec_options(ExecOptions::with_threads(threads));
    bench.run(&mut gpu).expect("benchmark run")
}

#[test]
fn fft_forward_is_bit_identical_across_thread_counts() {
    let bench = Fft::new(Scale::Quick);
    let serial = run_cuda_with(&bench, DeviceSpec::gtx480(), 1);
    assert!(serial.verify.is_pass(), "{:?}", serial.verify);
    for threads in [2, 8] {
        let par = run_cuda_with(&bench, DeviceSpec::gtx480(), threads);
        assert_eq!(
            serial.stats, par.stats,
            "stats diverged at {threads} workers"
        );
        assert_eq!(
            serial.kernel_ns, par.kernel_ns,
            "modelled kernel time diverged at {threads} workers"
        );
        assert_eq!(serial.value, par.value);
        assert!(par.verify.is_pass(), "{:?}", par.verify);
    }
}

#[test]
fn rdxs_is_bit_identical_across_thread_counts() {
    // RdxS exercises shared-memory atomics and the hardware %warpid
    // special register — the paper's most order-sensitive benchmark.
    let bench = Rdxs::new(Scale::Quick);
    let serial = run_cuda_with(&bench, DeviceSpec::gtx480(), 1);
    assert!(serial.verify.is_pass(), "{:?}", serial.verify);
    let par = run_cuda_with(&bench, DeviceSpec::gtx480(), 8);
    assert_eq!(serial.stats, par.stats);
    assert_eq!(serial.kernel_ns, par.kernel_ns);
    assert_eq!(serial.value, par.value);
    assert!(par.verify.is_pass(), "{:?}", par.verify);
}

#[test]
fn table6_fl_corruption_survives_parallel_simulation() {
    // Table VI: on the HD5870's 64-wide wavefronts two 32-thread software
    // warps share one hardware %warpid and collide in RdxS's counters —
    // the run completes with wrong results ("FL"). The corruption is part
    // of the simulated semantics and must reproduce identically whether
    // blocks are simulated serially or in parallel.
    let bench = Rdxs::new(Scale::Quick);
    let serial = run_opencl_with(&bench, DeviceSpec::hd5870(), 1);
    let par = run_opencl_with(&bench, DeviceSpec::hd5870(), 8);
    assert!(
        matches!(serial.verify, Verify::Fail(_)),
        "expected FL on 64-wide wavefronts, got {:?}",
        serial.verify
    );
    assert!(matches!(par.verify, Verify::Fail(_)));
    assert_eq!(serial.stats, par.stats, "corrupted stats must still match");
    assert_eq!(serial.kernel_ns, par.kernel_ns);
    assert_eq!(serial.value, par.value);
}

#[test]
fn launch_report_and_memory_identical_at_sim_level() {
    // Below the runtime: same kernel, same initial memory, thread counts
    // 1 vs 8 — the full LaunchReport (stats + timing) and every byte of
    // global memory must match.
    use gpucmp::compiler::{global_id_x, ld_global, Api, DslKernel, Expr};
    use gpucmp::ptx::Ty;

    let mut k = DslKernel::new("scale2");
    let buf = k.param_ptr("buf");
    let n = k.param("n", Ty::S32);
    let gid = k.let_(Ty::S32, global_id_x());
    k.if_(Expr::from(gid).lt(n), |k| {
        let v = ld_global(buf.clone(), gid, Ty::F32);
        k.st_global(buf.clone(), gid, Ty::F32, v * 2.0f32);
    });
    let def = k.finish();

    let device = DeviceSpec::gtx480();
    let compiled =
        gpucmp::compiler::compile(&def, Api::Cuda, device.max_regs_per_thread).expect("compile");
    let kernel = compiled.exec.resolve().expect("resolve");

    let n = 64 * 1024usize;
    let run_with = |threads: usize| {
        let mut gmem = GlobalMemory::new(1 << 20);
        let ptr = gmem.alloc((n * 4) as u64).unwrap();
        let bytes: Vec<u8> = (0..n)
            .flat_map(|i| (i as f32 * 0.5).to_le_bytes())
            .collect();
        gmem.copy_in(ptr, &bytes).unwrap();
        let cfg = LaunchConfig::new((n as u32).div_ceil(256), 256u32)
            .arg_ptr(ptr)
            .arg_i32(n as i32);
        let report = launch_with(
            &device,
            &kernel,
            &mut gmem,
            &[],
            &cfg,
            &ExecOptions::with_threads(threads),
        )
        .expect("launch");
        let mut out = vec![0u8; n * 4];
        gmem.copy_out(ptr, &mut out).unwrap();
        (report, out)
    };

    let (serial, mem_serial) = run_with(1);
    let (par, mem_par) = run_with(8);
    assert_eq!(serial.stats, par.stats);
    assert_eq!(serial.timing, par.timing);
    assert_eq!(mem_serial, mem_par);
    assert!(par.profile.blocks_simulated > 0);

    // The flattened LaunchReport counter set — what BENCH reports and
    // chrome traces serialise — must also be bit-identical, entry by
    // entry (f64 bit patterns, not approximate equality).
    let cs = serial.counters(&device);
    let cp = par.counters(&device);
    assert_eq!(cs.len(), cp.len());
    for ((name_s, v_s), (name_p, v_p)) in cs.iter().zip(cp.iter()) {
        assert_eq!(name_s, name_p);
        assert_eq!(
            v_s.to_bits(),
            v_p.to_bits(),
            "counter '{name_s}' diverged: {v_s} vs {v_p}"
        );
    }
}

#[test]
fn profiled_counters_identical_across_thread_counts() {
    // Whole-benchmark profiling through the runtime: the merged counter
    // set Sobel reports (global + shared + constant traffic) is the same
    // object the bench report serialises, so it must be bit-identical at
    // GPUCMP_SIM_THREADS=1 vs 8.
    use gpucmp::benchmarks::sobel::Sobel;
    let device = DeviceSpec::gtx280(); // const-cache path + half-warp coalescing
    let bench = Sobel::new(Scale::Quick);
    let serial = run_cuda_with(&bench, device.clone(), 1);
    let par = run_cuda_with(&bench, device.clone(), 8);
    let cs = serial.stats.counter_set(device.warp_width);
    let cp = par.stats.counter_set(device.warp_width);
    assert!(cs.len() > 20, "expected a populated counter set");
    assert_eq!(cs.len(), cp.len());
    for ((name_s, v_s), (name_p, v_p)) in cs.iter().zip(cp.iter()) {
        assert_eq!(name_s, name_p);
        assert_eq!(
            v_s.to_bits(),
            v_p.to_bits(),
            "counter '{name_s}' diverged: {v_s} vs {v_p}"
        );
    }
}
