//! Cross-crate integration tests: DSL → front-ends → ptxas → simulator →
//! runtime → benchmark → methodology, exercised together.

use gpucmp::compiler::{self, global_id_x, Api, DslKernel, Expr, Unroll};
use gpucmp::core::{fairness, BuildConfig, Pr};
use gpucmp::ptx::{InstStats, Ty};
use gpucmp::runtime::{ClStatus, Cuda, Gpu, GpuExt, OpenCl, RtError};
use gpucmp::sim::{DeviceKind, DeviceSpec, LaunchConfig};

/// A vector-add kernel definition used across these tests.
fn vadd() -> compiler::KernelDef {
    let mut k = DslKernel::new("vadd");
    let a = k.param_ptr("a");
    let b = k.param_ptr("b");
    let c = k.param_ptr("c");
    let n = k.param("n", Ty::S32);
    let gid = k.let_(Ty::S32, global_id_x());
    k.if_(Expr::from(gid).lt(n), |k| {
        let av = compiler::ld_global(a.clone(), gid, Ty::F32);
        let bv = compiler::ld_global(b.clone(), gid, Ty::F32);
        k.st_global(c.clone(), gid, Ty::F32, av + bv);
    });
    k.finish()
}

#[test]
fn same_source_same_results_on_every_device() {
    let def = vadd();
    let n = 3000usize;
    let xs: Vec<f32> = (0..n).map(|i| i as f32 * 0.25).collect();
    let ys: Vec<f32> = (0..n).map(|i| (n - i) as f32 * 0.5).collect();
    let want: Vec<f32> = xs.iter().zip(&ys).map(|(a, b)| a + b).collect();

    let mut runtimes: Vec<Box<dyn Gpu>> = vec![
        Box::new(Cuda::new(DeviceSpec::gtx280()).unwrap()),
        Box::new(Cuda::new(DeviceSpec::gtx480()).unwrap()),
        Box::new(OpenCl::create_any(DeviceSpec::gtx280())),
        Box::new(OpenCl::create_any(DeviceSpec::hd5870())),
        Box::new(OpenCl::create(DeviceSpec::intel920(), DeviceKind::Cpu).unwrap()),
        Box::new(OpenCl::create(DeviceSpec::cellbe(), DeviceKind::Accelerator).unwrap()),
    ];
    for gpu in &mut runtimes {
        let da = gpu.malloc((n * 4) as u64).unwrap();
        let db = gpu.malloc((n * 4) as u64).unwrap();
        let dc = gpu.malloc((n * 4) as u64).unwrap();
        gpu.h2d_t(da, &xs).unwrap();
        gpu.h2d_t(db, &ys).unwrap();
        let h = gpu.build(&def).unwrap();
        let cfg = LaunchConfig::new((n as u32).div_ceil(128), 128u32)
            .arg_ptr(da)
            .arg_ptr(db)
            .arg_ptr(dc)
            .arg_i32(n as i32);
        gpu.launch(h, &cfg).unwrap();
        let got = gpu.d2h_t::<f32>(dc, n).unwrap();
        assert_eq!(got, want, "on {}", gpu.device().name);
    }
}

#[test]
fn front_ends_differ_statically_but_agree_dynamically() {
    // A kernel with foldable conditionals: the two front-ends produce
    // different PTX but identical results.
    let mut k = DslKernel::new("folding");
    let out = k.param_ptr("out");
    let gid = k.let_(Ty::S32, global_id_x());
    k.for_(0i64, 6i64, 1, Unroll::Full, |k, i| {
        let w = compiler::select(i.clone().lt(3i32), 2.0f32, 0.5f32);
        k.st_global(
            out.clone(),
            Expr::from(gid) * 6i32 + i,
            Ty::F32,
            w * Expr::from(gid).cast(Ty::F32),
        );
    });
    let def = k.finish();

    let c = compiler::compile(&def, Api::Cuda, 63).unwrap();
    let o = compiler::compile(&def, Api::OpenCl, 63).unwrap();
    assert_ne!(
        InstStats::of_kernel(&c.ptx),
        InstStats::of_kernel(&o.ptx),
        "static code must differ"
    );

    let run = |api: Api| -> Vec<f32> {
        let mut gpu: Box<dyn Gpu> = match api {
            Api::Cuda => Box::new(Cuda::new(DeviceSpec::gtx480()).unwrap()),
            Api::OpenCl => Box::new(OpenCl::create_any(DeviceSpec::gtx480())),
        };
        let out = gpu.malloc(64 * 6 * 4).unwrap();
        let h = gpu.build(&def).unwrap();
        let cfg = LaunchConfig::new(1u32, 64u32).arg_ptr(out);
        gpu.launch(h, &cfg).unwrap();
        gpu.d2h_t::<f32>(out, 64 * 6).unwrap()
    };
    assert_eq!(
        run(Api::Cuda),
        run(Api::OpenCl),
        "dynamic results must agree"
    );
}

#[test]
fn methodology_classifies_the_papers_comparisons() {
    // Sobel, unmodified: OpenCL uses constant memory, CUDA doesn't, and
    // the front-ends differ — the comparison is unfair at two
    // programmer-owned steps plus the compiler step.
    let c = BuildConfig::cuda("Sobel", &[], "GTX280", "16x16");
    let o = BuildConfig::opencl("Sobel", &["constant-memory"], "GTX280", "16x16");
    let f = fairness(&c, &o);
    assert!(!f.is_fair());
    assert!(!f.only_compilers_differ());

    // After equalising the source and optimisations, only the compilers
    // differ — the paper's residual, attributable comparison.
    let mut c2 = c.clone();
    let mut o2 = o.clone();
    c2.source = "sobel.krn".into();
    o2.source = "sobel.krn".into();
    o2.optimizations.clear();
    let f2 = fairness(&c2, &o2);
    assert!(f2.only_compilers_differ());
}

#[test]
fn pr_values_flow_from_end_to_end_runs() {
    use gpucmp::benchmarks::common::{Benchmark, Scale};
    use gpucmp::benchmarks::tranp::TranP;
    let b = TranP::new(Scale::Quick);
    let dev = DeviceSpec::gtx480();
    let mut cuda = Cuda::new(dev.clone()).unwrap();
    let rc = b.run(&mut cuda).unwrap();
    let mut ocl = OpenCl::create_any(dev);
    let ro = b.run(&mut ocl).unwrap();
    assert!(rc.verify.is_pass() && ro.verify.is_pass());
    let pr = Pr::from_performance(ro.performance(), rc.performance());
    assert!(pr.0 > 0.5 && pr.0 < 2.0, "PR = {pr}");
}

#[test]
fn cell_resource_errors_surface_as_cl_status() {
    use gpucmp::benchmarks::common::{Benchmark, Scale};
    use gpucmp::benchmarks::fft::Fft;
    let b = Fft::new(Scale::Quick);
    let mut cell = OpenCl::create(DeviceSpec::cellbe(), DeviceKind::Accelerator).unwrap();
    match b.run(&mut cell) {
        Err(RtError::Cl(ClStatus::OutOfResources)) => {}
        other => panic!("expected CL_OUT_OF_RESOURCES, got {other:?}"),
    }
}

#[test]
fn determinism_across_repeated_full_runs() {
    use gpucmp::benchmarks::common::{Benchmark, Scale};
    use gpucmp::benchmarks::scan::Scan;
    let b = Scan::new(Scale::Quick);
    let run = || {
        let mut gpu = Cuda::new(DeviceSpec::gtx280()).unwrap();
        let r = b.run(&mut gpu).unwrap();
        (r.value.to_bits(), r.kernel_ns.to_bits(), r.stats)
    };
    assert_eq!(run(), run());
}
